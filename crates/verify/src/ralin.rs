//! `Φ_ra` — replication-aware linearizability over whole-fleet executions.
//!
//! The Table 2 obligations certify one store: every `do` and every
//! three-way merge preserves the simulation relation, and every query
//! agrees with the declarative specification `F_τ`. This module certifies
//! the **replication layer** carrying those stores: a whole-fleet
//! execution — local operations, pack ingests and head integrations on
//! `n` independent replicas, under fault-injected schedules — must admit
//! a *linearization* of the global operation history that
//!
//! 1. respects every replica's local order and the Lamport happens-before
//!    edges, and
//! 2. replays through `F_τ` to reproduce every update return value and
//!    every query output observed at every replica.
//!
//! This is replication-aware linearizability in the sense of Enea et
//! al. 2019 (and of the Peepul authors' follow-up work on verifying it
//! automatically): the sequential witness order is the timestamp order,
//! and each operation/observation is explained by `F_τ` over exactly the
//! events *visible* to it, not over the whole prefix.
//!
//! # The witness structure
//!
//! A [`HistoryRecorder`] attaches to every node of a replicated
//! [`Cluster`] (through `peepul-net`'s [`HistoryObserver`] hook, which
//! fires inside the emitting replica's store lock) and accumulates a
//! [`WitnessHistory`]:
//!
//! * a global event table: for each minted timestamp `t`, the operation,
//!   its return value, and its recorded causal past (the operation events
//!   in its branch's ancestry at commit time);
//! * one trace per replica: `Op(t)` (performed locally), `Learn(ts)`
//!   (ingested a pack, in pack order), `Head(visible)` (integrated remote
//!   history into the local branch), and `Observe{q, output, visible}`
//!   (answered a query probe).
//!
//! # What [`check_ra_lin`] verifies
//!
//! * **hb-timestamp consistency** — every recorded past edge points to an
//!   existing event that orders strictly before its observer (the Lamport
//!   receive rule, end to end);
//! * **downward closure** — causal pasts are transitively closed, so the
//!   timestamp order is a linearization whose every prefix is
//!   visibility-closed;
//! * **return-value replay** — each update's return value equals
//!   `F_τ(op, past)` over its recorded visible sub-execution (rebuilt
//!   with [`AbstractState::from_witness`](peepul_core::AbstractState));
//! * **session walk** — per replica, in trace order: an operation's past
//!   is exactly the branch's visible set; packs are learned in causal
//!   order (no event before its dependencies); head integration only
//!   grows the visible set and keeps it downward-closed; every
//!   observation happens at the current visible set and its output equals
//!   `F_τ(q, visible)`.
//!
//! Each check is the one that kills one of the deliberate
//! [`ReplicationMutation`]s — see [`run_replication_mutants`], the mutant
//! kill-gate CI runs.

use crate::generator::RandomConfig;
use peepul_core::obligations::{Certified, Obligation, ObligationError};
use peepul_core::{AbstractOf, Mrdt, Specification, Timestamp};
use peepul_net::{
    ChannelTransport, Cluster, HistoryObserver, Remote, Replica, ReplicationMutation,
};
use peepul_store::{Backend, MemoryBackend};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One recorded operation event of a fleet execution.
#[derive(Clone, Debug)]
struct WitnessEvent<M: Mrdt> {
    op: M::Op,
    rval: M::Value,
    /// The operation events in the minting branch's ancestry at commit
    /// time — `vis⁻¹` of this event, as the replica *claimed* it.
    past: BTreeSet<Timestamp>,
}

/// One entry of a replica's session trace, in store-mutation order.
#[derive(Clone, Debug)]
enum TraceRecord<M: Mrdt> {
    /// Performed a local operation minting this timestamp.
    Op(Timestamp),
    /// Ingested a pack introducing these events, in pack order.
    Learn(Vec<Timestamp>),
    /// Integrated remote history; the local head's visible set is now this.
    Head(Vec<Timestamp>),
    /// Answered a query probe at a head with this visible set.
    Observe {
        q: M::Query,
        output: M::Output,
        visible: Vec<Timestamp>,
    },
}

/// The witness structure of one fleet execution: the global event table
/// plus one session trace per replica. Usually recorded live by a
/// [`HistoryRecorder`]; the hand-building methods exist so the checker's
/// own tests can construct histories no healthy fleet would produce.
#[derive(Clone, Debug)]
pub struct WitnessHistory<M: Mrdt> {
    events: BTreeMap<Timestamp, WitnessEvent<M>>,
    traces: BTreeMap<String, Vec<TraceRecord<M>>>,
    /// First duplicated mint, if any — a fleet-level Ψ_ts violation the
    /// checker reports rather than panics on.
    duplicate: Option<Timestamp>,
    /// Records a bounded recorder refused to retain. A non-zero count
    /// makes the history *truncated*: [`check_ra_lin`] refuses it, since
    /// missing records could hide exactly the violation being checked
    /// for.
    dropped: u64,
}

impl<M: Mrdt> WitnessHistory<M> {
    /// An empty history.
    pub fn new() -> Self {
        WitnessHistory {
            events: BTreeMap::new(),
            traces: BTreeMap::new(),
            duplicate: None,
            dropped: 0,
        }
    }

    fn trace(&mut self, replica: &str) -> &mut Vec<TraceRecord<M>> {
        self.traces.entry(replica.to_owned()).or_default()
    }

    /// Records a local operation: `replica` minted `t` with return value
    /// `rval`, observing exactly `past`.
    pub fn record_op(
        &mut self,
        replica: &str,
        t: Timestamp,
        op: M::Op,
        rval: M::Value,
        past: BTreeSet<Timestamp>,
    ) {
        if self
            .events
            .insert(t, WitnessEvent { op, rval, past })
            .is_some()
        {
            self.duplicate.get_or_insert(t);
        }
        self.trace(replica).push(TraceRecord::Op(t));
    }

    /// Records a pack ingest: `replica` learned `events`, in pack order.
    pub fn record_learn(&mut self, replica: &str, events: Vec<Timestamp>) {
        self.trace(replica).push(TraceRecord::Learn(events));
    }

    /// Records a head integration: `replica`'s local branch now sees
    /// exactly `visible`.
    pub fn record_head(&mut self, replica: &str, visible: Vec<Timestamp>) {
        self.trace(replica).push(TraceRecord::Head(visible));
    }

    /// Records a query probe answered at a head seeing exactly `visible`.
    pub fn record_observe(
        &mut self,
        replica: &str,
        q: M::Query,
        output: M::Output,
        visible: Vec<Timestamp>,
    ) {
        self.trace(replica)
            .push(TraceRecord::Observe { q, output, visible });
    }

    /// Number of recorded operation events.
    pub fn events(&self) -> usize {
        self.events.len()
    }

    /// Total trace records across all replicas.
    pub fn records(&self) -> usize {
        self.traces.values().map(Vec::len).sum()
    }

    /// Number of replicas that emitted at least one record.
    pub fn replicas(&self) -> usize {
        self.traces.len()
    }

    /// Marks one record as dropped by a capacity-bounded recorder.
    pub fn note_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Records a bounded recorder dropped instead of retaining.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether any record was dropped — a truncated history cannot be
    /// certified.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }
}

impl<M: Mrdt> Default for WitnessHistory<M> {
    fn default() -> Self {
        WitnessHistory::new()
    }
}

/// The standard [`HistoryObserver`]: accumulates a [`WitnessHistory`]
/// behind a mutex. One instance is shared by every node of a cluster;
/// callbacks append under the emitting replica's store lock, so each
/// replica's trace is exactly its store-mutation order.
///
/// A recorder is unbounded by default — the right mode for the bounded
/// fleets the certification suites drive. [`HistoryRecorder::bounded`]
/// caps the retained trace records for long-running instrumented fleets;
/// overflow is accounted explicitly (never silent) and a truncated
/// snapshot is refused by [`check_ra_lin`].
#[derive(Debug, Default)]
pub struct HistoryRecorder<M: Mrdt> {
    history: Mutex<WitnessHistory<M>>,
    capacity: Option<usize>,
    dropped: Arc<AtomicU64>,
}

impl<M: Mrdt> HistoryRecorder<M> {
    /// An unbounded recorder with an empty history.
    pub fn new() -> Self {
        HistoryRecorder {
            history: Mutex::new(WitnessHistory::new()),
            capacity: None,
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A recorder retaining at most `capacity` trace records. Further
    /// records are counted as dropped, which marks the history truncated.
    pub fn bounded(capacity: usize) -> Self {
        HistoryRecorder {
            capacity: Some(capacity),
            ..HistoryRecorder::new()
        }
    }

    /// Records this recorder refused to retain (0 while under capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Publishes the recorder's occupancy as live gauges on an
    /// observability registry: `peepul_verify_witness_records` (retained)
    /// and `peepul_verify_witness_dropped` (refused — non-zero means no
    /// snapshot of this recorder can certify).
    pub fn publish_gauges(self: &Arc<Self>, registry: &peepul_obs::Registry)
    where
        M: 'static,
        M::Op: Send,
        M::Value: Send,
        M::Query: Send,
        M::Output: Send,
    {
        let recorder = Arc::clone(self);
        registry.gauge_fn("peepul_verify_witness_records", move || {
            recorder
                .history
                .lock()
                .expect("witness recorder poisoned")
                .records() as f64
        });
        let dropped = Arc::clone(&self.dropped);
        registry.gauge_fn("peepul_verify_witness_dropped", move || {
            dropped.load(Ordering::Relaxed) as f64
        });
    }

    /// Runs `record` against the history if capacity allows, else
    /// accounts the drop (in the shared counter and the history itself,
    /// so snapshots carry their own truncation evidence).
    fn retain(&self, record: impl FnOnce(&mut WitnessHistory<M>)) {
        let mut history = self.history.lock().expect("witness recorder poisoned");
        if self.capacity.is_some_and(|cap| history.records() >= cap) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            history.note_dropped();
        } else {
            record(&mut history);
        }
    }

    /// A snapshot of everything recorded so far.
    pub fn snapshot(&self) -> WitnessHistory<M> {
        self.history
            .lock()
            .expect("witness recorder poisoned")
            .clone()
    }
}

impl<M: Mrdt> HistoryObserver<M> for HistoryRecorder<M>
where
    M::Op: Send,
    M::Value: Send,
    M::Query: Send,
    M::Output: Send,
{
    fn local_op(
        &self,
        replica: &str,
        t: Timestamp,
        op: &M::Op,
        rval: &M::Value,
        visible: &[Timestamp],
    ) {
        self.retain(|h| {
            h.record_op(
                replica,
                t,
                op.clone(),
                rval.clone(),
                visible.iter().copied().collect(),
            );
        });
    }

    fn learned(&self, replica: &str, events: &[Timestamp]) {
        self.retain(|h| h.record_learn(replica, events.to_vec()));
    }

    fn head_advanced(&self, replica: &str, visible: &[Timestamp]) {
        self.retain(|h| h.record_head(replica, visible.to_vec()));
    }

    fn observed(&self, replica: &str, q: &M::Query, output: &M::Output, visible: &[Timestamp]) {
        self.retain(|h| h.record_observe(replica, q.clone(), output.clone(), visible.to_vec()));
    }
}

/// Which parts of the witness [`check_ra_lin`] replays through `F_τ`.
///
/// The default replays everything. [`RaLinOptions::structural`] skips the
/// specification replays and checks only the structural axioms
/// (happens-before consistency, causal delivery, monotonic visibility,
/// session guarantees) — for data types certified relative to the
/// paper's strong-Ψ_lca merge envelope ([`crate::runner::MergePolicy`]):
/// a fleet's gossip merges are arbitrary, so such a type's declarative
/// spec is not owed over them, exactly as the single-store harness skips
/// out-of-envelope merges.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RaLinOptions {
    /// Replay each update's return value as `F_τ(op, past)`.
    pub replay_rvals: bool,
    /// Replay each observation's output as `F_τ(q, visible)`.
    pub replay_queries: bool,
}

impl Default for RaLinOptions {
    fn default() -> Self {
        RaLinOptions {
            replay_rvals: true,
            replay_queries: true,
        }
    }
}

impl RaLinOptions {
    /// Structural checking only — no specification replays.
    pub fn structural() -> Self {
        RaLinOptions {
            replay_rvals: false,
            replay_queries: false,
        }
    }
}

/// What one [`check_ra_lin`] pass established.
#[derive(Copy, Clone, Debug, Default)]
pub struct RaLinStats {
    /// Operation events in the witness.
    pub events: u64,
    /// Trace records walked across all replicas.
    pub records: u64,
    /// Query observations checked.
    pub observations: u64,
    /// Replicas contributing to the history.
    pub replicas: u64,
    /// Linearization prefixes validated by specification replay (one per
    /// replayed return value plus one per replayed observation).
    pub linearizations: u64,
}

impl RaLinStats {
    /// Accumulates another pass into this one.
    pub fn absorb(&mut self, other: &RaLinStats) {
        self.events += other.events;
        self.records += other.records;
        self.observations += other.observations;
        self.replicas += other.replicas;
        self.linearizations += other.linearizations;
    }
}

/// The visible sub-execution at `vis`, rebuilt from the witness.
fn project<M: Certified>(
    events: &BTreeMap<Timestamp, WitnessEvent<M>>,
    vis: &BTreeSet<Timestamp>,
) -> AbstractOf<M> {
    AbstractOf::<M>::from_witness(vis.iter().map(|t| {
        let ev = &events[t];
        (ev.op.clone(), ev.rval.clone(), *t, ev.past.clone())
    }))
}

/// Checks `Φ_ra` on a recorded fleet history: the timestamp order is a
/// linearization respecting every replica's session and the
/// happens-before edges, and (unless disabled in `options`) replaying it
/// through `F_τ` reproduces every recorded return value and observation.
/// See the [module docs](self) for the axiom-by-axiom breakdown.
///
/// # Errors
///
/// The first violated axiom as an [`ObligationError`] naming
/// [`Obligation::RaLin`], with a counterexample description.
pub fn check_ra_lin<M: Certified>(
    history: &WitnessHistory<M>,
    options: &RaLinOptions,
) -> Result<RaLinStats, ObligationError> {
    let err = |msg: String| ObligationError::new(Obligation::RaLin, msg);
    if history.truncated() {
        return Err(err(format!(
            "witness history is truncated: a bounded recorder dropped {} record(s) — the \
             missing records could hide exactly the violation under test, so a truncated \
             history certifies nothing; raise the recorder capacity",
            history.dropped()
        )));
    }
    if let Some(t) = history.duplicate {
        return Err(err(format!(
            "two replicas minted the same timestamp {t:?} — Ψ_ts is violated fleet-wide, \
             no linearization can contain the event twice"
        )));
    }
    let events = &history.events;
    let mut linearizations = 0u64;

    // Happens-before / timestamp consistency: every past edge points to a
    // real event that orders strictly before its observer.
    for (t, ev) in events {
        for e in &ev.past {
            let Some(seen) = events.get(e) else {
                return Err(err(format!(
                    "event {t:?} observed {e:?}, which no replica ever performed"
                )));
            };
            if e >= t {
                return Err(err(format!(
                    "happens-before/timestamp inversion: {t:?} observed {e:?} but does not \
                     order after it — the Lamport receive rule did not hold"
                )));
            }
            // Downward closure: the linearization's prefixes must be
            // visibility-closed.
            if let Some(missing) = seen.past.iter().find(|f| !ev.past.contains(f)) {
                return Err(err(format!(
                    "visibility is not transitively closed: {t:?} observed {e:?} but not \
                     {missing:?} from its past"
                )));
            }
        }
    }

    // Return-value replay: each event against its visible sub-execution.
    if options.replay_rvals {
        for (t, ev) in events {
            let abs = project::<M>(events, &ev.past);
            let specified = M::Spec::spec(&ev.op, &abs);
            linearizations += 1;
            if specified != ev.rval {
                return Err(err(format!(
                    "no linearization explains {:?} at {t:?}: it returned {:?} but F_τ over \
                     its {} visible events specifies {:?}",
                    ev.op,
                    ev.rval,
                    abs.len(),
                    specified
                )));
            }
        }
    }

    // Session walk: each replica's trace against the sets it could
    // actually know (`known`) and see on its branch (`visible`).
    let mut observations = 0u64;
    for (replica, trace) in &history.traces {
        let mut known: BTreeSet<Timestamp> = BTreeSet::new();
        let mut visible: BTreeSet<Timestamp> = BTreeSet::new();
        for rec in trace {
            match rec {
                TraceRecord::Op(t) => {
                    let ev = events.get(t).ok_or_else(|| {
                        err(format!(
                            "trace of {replica} performs unrecorded event {t:?}"
                        ))
                    })?;
                    if ev.past != visible {
                        return Err(err(format!(
                            "session guarantee violated on {replica}: the op at {t:?} \
                             recorded past {:?} but its branch's visible events were {:?} — \
                             a visibility edge was dropped or invented",
                            ev.past, visible
                        )));
                    }
                    known.insert(*t);
                    visible.insert(*t);
                }
                TraceRecord::Learn(ts) => {
                    for f in ts {
                        let ev = events.get(f).ok_or_else(|| {
                            err(format!("trace of {replica} learns unrecorded event {f:?}"))
                        })?;
                        if let Some(dep) = ev.past.iter().find(|e| !known.contains(e)) {
                            return Err(err(format!(
                                "causal delivery violated on {replica}: learned {f:?} before \
                                 its causal dependency {dep:?} — the pack was ingested out \
                                 of order"
                            )));
                        }
                        known.insert(*f);
                    }
                }
                TraceRecord::Head(vis) => {
                    let next: BTreeSet<Timestamp> = vis.iter().copied().collect();
                    if let Some(unknown) = next.iter().find(|e| !known.contains(e)) {
                        return Err(err(format!(
                            "phantom visibility on {replica}: head integration made {unknown:?} \
                             visible before the replica ever learned it"
                        )));
                    }
                    if let Some(lost) = visible.iter().find(|e| !next.contains(e)) {
                        return Err(err(format!(
                            "monotonic visibility violated on {replica}: head integration lost \
                             previously visible event {lost:?} — remote history replaced the \
                             local branch instead of merging with it"
                        )));
                    }
                    for f in &next {
                        if let Some(missing) = events[f].past.iter().find(|e| !next.contains(e)) {
                            return Err(err(format!(
                                "head of {replica} is not visibility-closed: sees {f:?} but \
                                 not {missing:?} from its past"
                            )));
                        }
                    }
                    visible = next;
                }
                TraceRecord::Observe {
                    q,
                    output,
                    visible: vis,
                } => {
                    observations += 1;
                    let at: BTreeSet<Timestamp> = vis.iter().copied().collect();
                    if at != visible {
                        return Err(err(format!(
                            "observation on {replica} answered at visible set {at:?} but the \
                             session's branch saw {visible:?}"
                        )));
                    }
                    if options.replay_queries {
                        let abs = project::<M>(events, &at);
                        let specified = M::Spec::query(q, &abs);
                        linearizations += 1;
                        if &specified != output {
                            return Err(err(format!(
                                "observation not explained by any linearization: query {q:?} \
                                 on {replica} answered {output:?} but F_τ over its {} visible \
                                 events specifies {specified:?}",
                                abs.len()
                            )));
                        }
                    }
                }
            }
        }
    }

    Ok(RaLinStats {
        events: history.events() as u64,
        records: history.records() as u64,
        observations,
        replicas: history.replicas() as u64,
        linearizations,
    })
}

/// Deterministic per-(seed, replica, round) entropy for fleet operation
/// generation — a splitmix64-style mix, so the operation stream is a pure
/// function of the run seed and independent of thread scheduling.
pub fn fleet_entropy(seed: u64, replica: u64, round: u64) -> u64 {
    let mut z = seed
        ^ replica.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ round.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed requested through the `PEEPUL_REPLAY` environment variable,
/// if any. When a fleet run fails, its failure message names the run's
/// seed; re-running the same suite with `PEEPUL_REPLAY=<seed>` replays
/// exactly that schedule (and only it). Unparseable values are ignored.
pub fn replay_seed() -> Option<u64> {
    std::env::var("PEEPUL_REPLAY").ok()?.trim().parse().ok()
}

/// Shape of one recorded-and-checked fleet execution.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of independent replicas.
    pub replicas: usize,
    /// Operations each replica performs.
    pub ops_per_replica: usize,
    /// Ring-gossip period during the run (0 = no gossip until
    /// anti-entropy).
    pub gossip_every: usize,
    /// Seed of the operation stream and the loss plans.
    pub seed: u64,
    /// Seeded message loss on every link, in per-mille (0 = lossless).
    pub loss_per_mille: u16,
    /// Partition replica 0's outgoing link for the whole run (healed
    /// before anti-entropy), so part of the history spreads late.
    pub partition_one: bool,
    /// Which specification replays to run.
    pub options: RaLinOptions,
    /// Deliberate replication fault to enact on every node —
    /// [`ReplicationMutation::None`] for certification runs; the other
    /// variants exist for the kill-gate and for replay-debugging it.
    pub mutation: ReplicationMutation,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: 4,
            ops_per_replica: 12,
            gossip_every: 3,
            seed: RandomConfig::default().seed,
            loss_per_mille: 100,
            partition_one: true,
            options: RaLinOptions::default(),
            mutation: ReplicationMutation::None,
        }
    }
}

/// Runs one fault-injected fleet execution over fresh in-memory replicas,
/// records its witness history, and checks `Φ_ra` — see
/// [`check_fleet_on`] for the steps.
///
/// # Errors
///
/// A rendered failure: infrastructure errors, convergence failure, or
/// the `Φ_ra` counterexample.
pub fn check_fleet<M>(
    config: &FleetConfig,
    op_of: impl Fn(u64) -> M::Op + Send + Sync,
    probes: &[M::Query],
) -> Result<RaLinStats, String>
where
    M: Certified + Send + Sync + 'static,
    M::Op: Send,
    M::Value: Send,
    M::Query: Send,
    M::Output: Send,
{
    let cluster: Cluster<M> =
        Cluster::new(config.replicas).map_err(|e| format!("building cluster: {e}"))?;
    check_fleet_on(&cluster, config, op_of, probes)
}

/// Runs one fault-injected fleet execution on an existing replicated
/// cluster (any backends — memory, segment, mixed):
///
/// 1. attach a [`HistoryRecorder`] to every node (and the configured
///    [`ReplicationMutation`], if any);
/// 2. seed the fault plans: per-link loss, optionally a partition of
///    replica 0's link;
/// 3. run `ops_per_replica` operations per replica with ring gossip, in
///    deterministic lockstep ([`Cluster::run_lockstep`]): with the
///    [`fleet_entropy`]-derived operation stream and seeded fault plans,
///    the entire execution is a pure function of the seed — which is
///    what makes `PEEPUL_REPLAY` failure replay exact;
/// 4. heal all links and converge by anti-entropy, requiring all final
///    states observably equal (the *conventional* check);
/// 5. probe every replica with every query in `probes` (each probe is
///    recorded as an observation);
/// 6. [`check_ra_lin`] the recorded history.
///
/// # Errors
///
/// A rendered failure: infrastructure errors, convergence failure, or
/// the `Φ_ra` counterexample.
pub fn check_fleet_on<M, B>(
    cluster: &Cluster<M, B>,
    config: &FleetConfig,
    op_of: impl Fn(u64) -> M::Op + Send + Sync,
    probes: &[M::Query],
) -> Result<RaLinStats, String>
where
    M: Certified + Send + Sync + 'static,
    B: Backend + Send + Sync + 'static,
    M::Op: Send,
    M::Value: Send,
    M::Query: Send,
    M::Output: Send,
{
    let recorder = Arc::new(HistoryRecorder::<M>::new());
    cluster
        .set_observer(recorder.clone())
        .map_err(|e| format!("attaching observer: {e}"))?;
    if config.mutation != ReplicationMutation::None {
        cluster
            .set_mutation(config.mutation)
            .map_err(|e| format!("enacting mutation: {e}"))?;
    }
    for i in 0..cluster.replicas() {
        let faults = cluster
            .faults(i)
            .expect("replicated cluster has fault plans");
        if config.loss_per_mille > 0 {
            faults.set_loss(config.loss_per_mille, config.seed.wrapping_add(i as u64));
        }
        if config.partition_one && i == 0 {
            faults.partition();
        }
    }
    cluster
        .run_lockstep(
            config.ops_per_replica,
            config.gossip_every,
            |replica, round| op_of(fleet_entropy(config.seed, replica as u64, round as u64)),
        )
        .map_err(|e| format!("fleet run: {e}"))?;
    for i in 0..cluster.replicas() {
        let faults = cluster
            .faults(i)
            .expect("replicated cluster has fault plans");
        faults.set_loss(0, 0);
        faults.heal();
    }
    let states = cluster
        .converge()
        .map_err(|e| format!("anti-entropy: {e}"))?;
    for (i, s) in states.iter().enumerate().skip(1) {
        if !states[0].observably_equal(s) {
            return Err(format!("replicas 0 and {i} diverged after anti-entropy"));
        }
    }
    for i in 0..cluster.replicas() {
        for q in probes {
            cluster
                .read(i, q)
                .map_err(|e| format!("probing replica {i}: {e}"))?;
        }
    }
    check_ra_lin(&recorder.snapshot(), &config.options).map_err(|e| e.to_string())
}

/// What happened to one deliberately broken replication layer under the
/// kill-gate: the scenario is run twice, once faithful (the baseline must
/// certify) and once with the mutation enacted (Φ_ra must kill it while
/// conventional convergence still passes).
#[derive(Clone, Debug)]
pub struct MutantOutcome {
    /// The fault that was enacted.
    pub mutation: ReplicationMutation,
    /// The same scenario with the fault disabled certified cleanly.
    pub baseline_ok: bool,
    /// The mutated run still converged — i.e. the conventional check
    /// cannot see this fault.
    pub converged: bool,
    /// `Φ_ra` rejected the mutated run.
    pub killed: bool,
    /// The counterexample (or survival description).
    pub detail: String,
}

impl MutantOutcome {
    /// The kill-gate verdict: the fault is invisible to convergence
    /// checking and caught by `Φ_ra`, on a scenario that is clean when
    /// the fault is off.
    pub fn caught(&self) -> bool {
        self.baseline_ok && self.converged && self.killed
    }
}

/// One deterministic two-replica scenario shaped for `mutation`, run with
/// the fault enacted or not. Single-threaded: every apply/pull is
/// explicit, so the witness (and hence the verdict) is reproducible.
fn mutant_scenario(
    mutation: ReplicationMutation,
    enact: bool,
) -> (Result<RaLinStats, ObligationError>, bool) {
    use peepul_types::counter::{Counter, CounterOp, CounterQuery};
    let r0: Replica<Counter, MemoryBackend> =
        Replica::open("mutant-r0", "main", MemoryBackend::new()).expect("open r0");
    let r1: Replica<Counter, MemoryBackend> =
        Replica::open("mutant-r1", "main", MemoryBackend::new()).expect("open r1");
    let recorder = Arc::new(HistoryRecorder::<Counter>::new());
    r0.set_observer(recorder.clone());
    r1.set_observer(recorder.clone());
    if enact {
        r0.set_replication_mutation(mutation);
    }
    let mut to_r1 = Remote::new("mutant-r1", ChannelTransport::connect(r1.clone()));
    let mut to_r0 = Remote::new("mutant-r0", ChannelTransport::connect(r0.clone()));
    let inc = CounterOp::Increment;
    match mutation {
        ReplicationMutation::None | ReplicationMutation::BrokenReceiveRule => {
            // r0 is behind r1 in ticks; after pulling r1's longer history,
            // its next mint must order after everything it ingested. The
            // mutant rewinds the clock at ingest, so that mint lands *under*
            // the observed events.
            for _ in 0..2 {
                r0.apply("main", &inc).expect("apply");
            }
            for _ in 0..8 {
                r1.apply("main", &inc).expect("apply");
            }
            r0.pull(&mut to_r1, "main").expect("pull");
            r0.apply("main", &inc).expect("apply");
            r1.pull(&mut to_r0, "main").expect("pull");
        }
        ReplicationMutation::ReorderedPackIngest => {
            // A three-deep chain crosses in one pack; the mutant witnesses
            // children before parents.
            for _ in 0..3 {
                r1.apply("main", &inc).expect("apply");
            }
            r0.pull(&mut to_r1, "main").expect("pull");
            r0.apply("main", &inc).expect("apply");
            r1.pull(&mut to_r0, "main").expect("pull");
        }
        ReplicationMutation::SkipDivergenceCheck => {
            // Both sides have unmerged work; the mutant force-tracks the
            // remote head, silently discarding r0's own event from its
            // visible set — the heads still agree afterwards.
            r0.apply("main", &inc).expect("apply");
            r1.apply("main", &inc).expect("apply");
            r0.pull(&mut to_r1, "main").expect("pull");
            r1.pull(&mut to_r0, "main").expect("pull");
        }
        ReplicationMutation::DropVisibilityEdge => {
            // r0's first own operation after pulling r1 must witness the
            // pulled event; the mutant drops that edge from its record.
            r1.apply("main", &inc).expect("apply");
            r0.pull(&mut to_r1, "main").expect("pull");
            r0.apply("main", &inc).expect("apply");
            r1.pull(&mut to_r0, "main").expect("pull");
        }
    }
    r0.read_observed("main", &CounterQuery::Value)
        .expect("read r0");
    r1.read_observed("main", &CounterQuery::Value)
        .expect("read r1");
    let s0 = r0.state("main").expect("state r0");
    let s1 = r1.state("main").expect("state r1");
    let converged = s0.observably_equal(&s1);
    (
        check_ra_lin(&recorder.snapshot(), &RaLinOptions::default()),
        converged,
    )
}

/// The mutant kill-gate: enacts each deliberate [`ReplicationMutation`]
/// in a scenario shaped to exercise it and reports whether `Φ_ra` — and
/// only `Φ_ra`; every mutated run still passes conventional convergence
/// checking — killed it. CI hard-fails on any surviving mutant.
pub fn run_replication_mutants() -> Vec<MutantOutcome> {
    [
        ReplicationMutation::BrokenReceiveRule,
        ReplicationMutation::ReorderedPackIngest,
        ReplicationMutation::SkipDivergenceCheck,
        ReplicationMutation::DropVisibilityEdge,
    ]
    .into_iter()
    .map(|mutation| {
        let (baseline, baseline_converged) = mutant_scenario(mutation, false);
        let baseline_ok = baseline.is_ok() && baseline_converged;
        let (mutated, converged) = mutant_scenario(mutation, true);
        let (killed, detail) = match mutated {
            Err(e) if e.obligation() == Obligation::RaLin => (true, e.to_string()),
            Err(e) => (false, format!("rejected by the wrong obligation: {e}")),
            Ok(_) => (false, "mutant survived Φ_ra".to_owned()),
        };
        MutantOutcome {
            mutation,
            baseline_ok,
            converged,
            killed,
            detail,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;
    use peepul_types::counter::{Counter, CounterOp, CounterQuery};
    use peepul_types::queue::{Queue, QueueOp, QueueValue};

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    /// A hand-built healthy two-replica counter history certifies.
    #[test]
    fn healthy_hand_built_history_is_accepted() {
        let mut h = WitnessHistory::<Counter>::new();
        let (a, b) = (ts(1, 0), ts(1, 1));
        h.record_op("r0", a, CounterOp::Increment, (), BTreeSet::new());
        h.record_op("r1", b, CounterOp::Increment, (), BTreeSet::new());
        h.record_learn("r0", vec![b]);
        h.record_head("r0", vec![a, b]);
        h.record_observe("r0", CounterQuery::Value, 2, vec![a, b]);
        let stats = check_ra_lin(&h, &RaLinOptions::default()).expect("healthy history");
        assert_eq!(stats.events, 2);
        assert_eq!(stats.observations, 1);
        assert_eq!(stats.replicas, 2);
    }

    /// A bounded recorder accounts its overflow explicitly, surfaces it
    /// on a registry, and its truncated snapshot is refused — certifying
    /// from a partial witness would be unsound.
    #[test]
    fn truncated_witness_history_is_refused() {
        let recorder = Arc::new(HistoryRecorder::<Counter>::bounded(2));
        let registry = peepul_obs::Registry::new();
        recorder.publish_gauges(&registry);

        recorder.local_op("r0", ts(1, 0), &CounterOp::Increment, &(), &[]);
        recorder.local_op("r0", ts(2, 0), &CounterOp::Increment, &(), &[ts(1, 0)]);
        assert_eq!(recorder.dropped(), 0);
        assert!(check_ra_lin(&recorder.snapshot(), &RaLinOptions::default()).is_ok());

        // Third record exceeds the capacity: dropped, accounted, fatal.
        recorder.local_op(
            "r0",
            ts(3, 0),
            &CounterOp::Increment,
            &(),
            &[ts(1, 0), ts(2, 0)],
        );
        assert_eq!(recorder.dropped(), 1);
        let h = recorder.snapshot();
        assert!(h.truncated());
        assert_eq!(h.dropped(), 1);
        let e = check_ra_lin(&h, &RaLinOptions::default()).expect_err("truncated");
        assert!(e.message().contains("truncated"), "{e}");

        // The overflow is live in the exposition.
        let rendered = registry.render();
        assert!(
            rendered.contains("peepul_verify_witness_records 2"),
            "{rendered}"
        );
        assert!(
            rendered.contains("peepul_verify_witness_dropped 1"),
            "{rendered}"
        );
    }

    /// The canonical non-linearizable history: a dequeue whose observed
    /// return value names an enqueue that was *not visible* to it. No
    /// linearization explains it, and Φ_ra must say so.
    #[test]
    fn dequeue_before_visible_enqueue_is_rejected() {
        let mut h = WitnessHistory::<Queue<u32>>::new();
        let enq = ts(1, 1);
        let deq = ts(1, 0);
        h.record_op(
            "r1",
            enq,
            QueueOp::Enqueue(7),
            QueueValue::Ack,
            BTreeSet::new(),
        );
        // r0 claims its dequeue popped r1's entry — without the enqueue in
        // its past.
        h.record_op(
            "r0",
            deq,
            QueueOp::Dequeue,
            QueueValue::Dequeued(Some((enq, 7))),
            BTreeSet::new(),
        );
        let e = check_ra_lin(&h, &RaLinOptions::default()).expect_err("non-linearizable");
        assert_eq!(e.obligation(), Obligation::RaLin);
        assert!(e.message().contains("no linearization"), "{e}");
    }

    /// Learning an event before its causal dependency is a causal-delivery
    /// violation.
    #[test]
    fn learn_before_dependency_is_rejected() {
        let mut h = WitnessHistory::<Counter>::new();
        let (a, b) = (ts(1, 1), ts(2, 1));
        h.record_op("r1", a, CounterOp::Increment, (), BTreeSet::new());
        h.record_op("r1", b, CounterOp::Increment, (), BTreeSet::from([a]));
        h.record_learn("r0", vec![b, a]); // child first
        let e = check_ra_lin(&h, &RaLinOptions::default()).expect_err("out of order");
        assert_eq!(e.obligation(), Obligation::RaLin);
        assert!(e.message().contains("causal delivery"), "{e}");
    }

    /// A head integration that loses a previously visible event violates
    /// monotonic visibility.
    #[test]
    fn shrinking_head_is_rejected() {
        let mut h = WitnessHistory::<Counter>::new();
        let (a, b) = (ts(1, 0), ts(1, 1));
        h.record_op("r0", a, CounterOp::Increment, (), BTreeSet::new());
        h.record_op("r1", b, CounterOp::Increment, (), BTreeSet::new());
        h.record_learn("r0", vec![b]);
        h.record_head("r0", vec![b]); // a vanished
        let e = check_ra_lin(&h, &RaLinOptions::default()).expect_err("shrinking head");
        assert_eq!(e.obligation(), Obligation::RaLin);
        assert!(e.message().contains("monotonic visibility"), "{e}");
    }

    /// A mint that does not order after an event it observed breaks the
    /// Lamport receive rule.
    #[test]
    fn timestamp_inversion_is_rejected() {
        let mut h = WitnessHistory::<Counter>::new();
        let (a, b) = (ts(5, 1), ts(2, 0));
        h.record_op("r1", a, CounterOp::Increment, (), BTreeSet::new());
        h.record_op("r0", b, CounterOp::Increment, (), BTreeSet::from([a]));
        let e = check_ra_lin(&h, &RaLinOptions::default()).expect_err("inversion");
        assert_eq!(e.obligation(), Obligation::RaLin);
        assert!(e.message().contains("inversion"), "{e}");
    }

    /// Duplicate mints are a fleet-wide Ψ_ts violation, reported not
    /// panicked on.
    #[test]
    fn duplicate_mint_is_rejected() {
        let mut h = WitnessHistory::<Counter>::new();
        let t = ts(1, 0);
        h.record_op("r0", t, CounterOp::Increment, (), BTreeSet::new());
        h.record_op("r1", t, CounterOp::Increment, (), BTreeSet::new());
        let e = check_ra_lin(&h, &RaLinOptions::default()).expect_err("duplicate");
        assert!(e.message().contains("same timestamp"), "{e}");
    }

    /// The entropy mix is deterministic and spreads across its arguments.
    #[test]
    fn fleet_entropy_is_deterministic() {
        assert_eq!(fleet_entropy(1, 2, 3), fleet_entropy(1, 2, 3));
        assert_ne!(fleet_entropy(1, 2, 3), fleet_entropy(1, 2, 4));
        assert_ne!(fleet_entropy(1, 2, 3), fleet_entropy(1, 3, 3));
        assert_ne!(fleet_entropy(1, 2, 3), fleet_entropy(2, 2, 3));
    }

    /// End-to-end on real replicas: a healthy single-threaded scenario
    /// records and certifies on every mutant shape with the fault off.
    #[test]
    fn all_mutant_scenarios_are_healthy_without_the_fault() {
        for mutation in [
            ReplicationMutation::None,
            ReplicationMutation::BrokenReceiveRule,
            ReplicationMutation::ReorderedPackIngest,
            ReplicationMutation::SkipDivergenceCheck,
            ReplicationMutation::DropVisibilityEdge,
        ] {
            let (result, converged) = mutant_scenario(mutation, false);
            let stats = result.unwrap_or_else(|e| panic!("baseline for {mutation}: {e}"));
            assert!(converged, "baseline for {mutation} did not converge");
            assert!(stats.events > 0);
        }
    }
}

//! Bounded-exhaustive certification: check **every** execution of the
//! store up to a size bound.
//!
//! This is the workspace's substitute for the SMT proof: instead of
//! universally quantifying over executions symbolically, the checker
//! enumerates all of them up to `max_steps` transitions over a finite
//! operation alphabet and branch budget, running the full obligation suite
//! at every transition. Small scopes catch RDT bugs remarkably well — the
//! classic counterexamples (add/remove conflicts, duplicate adds,
//! criss-cross merges, double dequeues) all need only two or three
//! branches and a couple of operations.
//!
//! The search is a depth-first walk over LTS states; each node clones the
//! runner (cheap — snapshots are `Arc`-shared) and applies one more
//! transition with checks enabled.

use crate::runner::{CertificationError, MergePolicy, Runner};
use crate::schedule::Step;
use peepul_core::obligations::Certified;
use peepul_core::{Mrdt, ObligationReport};

/// Configuration of the exhaustive search.
#[derive(Clone, Debug)]
pub struct BoundedConfig<M: Mrdt> {
    /// Maximum schedule length (search depth).
    pub max_steps: usize,
    /// Maximum number of branches (root included).
    pub max_branches: usize,
    /// The **update** alphabet `DO` steps draw from. Queries do not belong
    /// here — they are probed at every state via `queries`.
    pub alphabet: Vec<M::Op>,
    /// Query probes checked (`Φ_spec`) against the post-state of every
    /// transition the search explores.
    pub queries: Vec<M::Query>,
}

/// Statistics of a completed search.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BoundedStats {
    /// Number of maximal (length `max_steps`) executions explored.
    pub executions: u64,
    /// Number of transitions checked (shared prefixes counted once).
    pub transitions: u64,
    /// Obligation instances checked across the whole search.
    pub obligations: ObligationReport,
}

/// The exhaustive checker.
#[derive(Debug)]
pub struct BoundedChecker<M: Certified>
where
    M::Op: PartialEq,
{
    config: BoundedConfig<M>,
    policy: MergePolicy,
    _marker: std::marker::PhantomData<M>,
}

impl<M: Certified> BoundedChecker<M>
where
    M::Op: PartialEq,
{
    /// Creates a checker for data type `M` (merge policy:
    /// [`MergePolicy::General`]).
    pub fn new(config: BoundedConfig<M>) -> Self {
        BoundedChecker {
            config,
            policy: MergePolicy::General,
            _marker: std::marker::PhantomData,
        }
    }

    /// Restricts the search to the paper's store envelope (see
    /// [`MergePolicy`]).
    #[must_use]
    pub fn with_policy(mut self, policy: MergePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// The first [`CertificationError`] found, i.e. a concrete minimal-ish
    /// counterexample execution (the DFS explores shorter prefixes first).
    pub fn run(&self) -> Result<BoundedStats, CertificationError> {
        let mut stats = BoundedStats::default();
        let mut runner: Runner<M> =
            Runner::with_policy(self.policy).with_queries(self.config.queries.clone());
        // Probe σ0 once: the DFS shares this root, and per-step probes
        // only cover post-transition states.
        runner.check_current_queries()?;
        stats.obligations.absorb(&runner.report());
        self.dfs(&runner, self.config.max_steps, &mut stats)?;
        Ok(stats)
    }

    fn possible_steps(&self, branches: usize) -> Vec<Step<M::Op>> {
        let mut steps = Vec::new();
        for b in 0..branches {
            for op in &self.config.alphabet {
                steps.push(Step::Do {
                    branch: b,
                    op: op.clone(),
                });
            }
        }
        for into in 0..branches {
            for from in 0..branches {
                if into != from {
                    steps.push(Step::Merge { into, from });
                }
            }
        }
        if branches < self.config.max_branches {
            for from in 0..branches {
                steps.push(Step::CreateBranch { from });
            }
        }
        steps
    }

    fn dfs(
        &self,
        runner: &Runner<M>,
        remaining: usize,
        stats: &mut BoundedStats,
    ) -> Result<(), CertificationError> {
        if remaining == 0 {
            stats.executions += 1;
            return Ok(());
        }
        for step in self.possible_steps(runner.branch_count()) {
            let mut child = runner.clone();
            let before = child.report();
            child.apply_step(&step)?;
            stats.transitions += 1;
            let mut delta = child.report();
            // Subtract what the parent had already accumulated.
            delta.phi_do -= before.phi_do;
            delta.phi_merge -= before.phi_merge;
            delta.phi_spec -= before.phi_spec;
            delta.phi_con -= before.phi_con;
            delta.psi_ts -= before.psi_ts;
            delta.psi_lca -= before.psi_lca;
            delta.codec -= before.codec;
            delta.ra_lin -= before.ra_lin;
            stats.obligations.absorb(&delta);
            self.dfs(&child, remaining - 1, stats)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_types::counter::{Counter, CounterOp, CounterQuery};
    use peepul_types::ew_flag::{EwFlagOp, EwFlagQuery, EwFlagSpace};

    #[test]
    fn counter_is_exhaustively_correct_to_depth_5() {
        // The update-only alphabet is smaller than the old mixed one, so
        // one more level of depth keeps the search meaningfully large.
        let checker = BoundedChecker::<Counter>::new(BoundedConfig {
            max_steps: 5,
            max_branches: 2,
            alphabet: vec![CounterOp::Increment],
            queries: vec![CounterQuery::Value],
        });
        let stats = checker.run().unwrap();
        assert!(stats.executions > 100);
        assert!(stats.obligations.phi_merge > 0);
        assert!(stats.obligations.phi_do > 0);
        // Every explored transition probed the value query.
        assert!(stats.obligations.phi_spec > stats.obligations.phi_do);
    }

    #[test]
    fn ew_flag_space_is_exhaustively_correct_to_depth_4() {
        let checker = BoundedChecker::<EwFlagSpace>::new(BoundedConfig {
            max_steps: 4,
            max_branches: 2,
            alphabet: vec![EwFlagOp::Enable, EwFlagOp::Disable],
            queries: vec![EwFlagQuery::Read],
        });
        let stats = checker.run().unwrap();
        assert!(stats.executions > 0);
        assert!(stats.obligations.total() > stats.transitions);
    }

    #[test]
    fn exhaustive_search_finds_injected_bug() {
        use peepul_core::{AbstractOf, Mrdt, SimulationRelation, Specification, Timestamp};

        /// A counter whose merge double-counts the LCA.
        #[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
        struct DoubleCounter(u64);

        impl peepul_core::Wire for DoubleCounter {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some(DoubleCounter(peepul_core::Wire::decode(input)?))
            }
        }

        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        struct Inc;

        impl Mrdt for DoubleCounter {
            type Op = Inc;
            type Value = u64;
            type Query = ();
            type Output = ();
            fn initial() -> Self {
                DoubleCounter(0)
            }
            fn apply(&self, _op: &Inc, _t: Timestamp) -> (Self, u64) {
                (DoubleCounter(self.0 + 1), 0)
            }
            fn query(&self, _q: &()) {}
            fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
                DoubleCounter(a.0 + b.0 - lca.0 + lca.0) // bug: forgot to subtract
            }
        }
        struct DSpec;
        impl Specification<DoubleCounter> for DSpec {
            fn spec(_op: &Inc, _s: &AbstractOf<DoubleCounter>) -> u64 {
                0
            }
            fn query(_q: &(), _s: &AbstractOf<DoubleCounter>) {}
        }
        struct DSim;
        impl SimulationRelation<DoubleCounter> for DSim {
            fn holds(abs: &AbstractOf<DoubleCounter>, conc: &DoubleCounter) -> bool {
                conc.0 == abs.len() as u64
            }
        }
        impl peepul_core::Certified for DoubleCounter {
            type Spec = DSpec;
            type Sim = DSim;
        }

        let checker = BoundedChecker::<DoubleCounter>::new(BoundedConfig {
            max_steps: 4,
            max_branches: 2,
            alphabet: vec![Inc],
            queries: vec![],
        });
        let err = checker.run().unwrap_err();
        assert!(matches!(
            err,
            CertificationError::Obligation { error, .. }
                if error.obligation() == peepul_core::Obligation::PhiMerge
        ));
    }
}

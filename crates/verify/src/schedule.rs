//! Execution schedules: scripts of store transitions.
//!
//! A schedule is the syntactic side of an execution `χ` (Definition 3.1):
//! a finite sequence of `CREATEBRANCH`/`DO`/`MERGE` labels. Branches are
//! numbered in creation order; branch `0` is the root. The runner maps
//! numbers to store branch names.

use std::fmt;

/// One transition label.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Step<Op> {
    /// Fork a new branch (its number is the current branch count) off
    /// branch `from`.
    CreateBranch {
        /// Source branch number.
        from: usize,
    },
    /// Perform a data-type operation on a branch.
    Do {
        /// Target branch number.
        branch: usize,
        /// The operation.
        op: Op,
    },
    /// Merge branch `from` into branch `into`.
    Merge {
        /// Target branch number (receives the merge).
        into: usize,
        /// Source branch number (unchanged).
        from: usize,
    },
}

impl<Op: fmt::Debug> fmt::Display for Step<Op> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::CreateBranch { from } => write!(f, "CREATEBRANCH(b{from} → new)"),
            Step::Do { branch, op } => write!(f, "DO({op:?}, b{branch})"),
            Step::Merge { into, from } => write!(f, "MERGE(b{into} ← b{from})"),
        }
    }
}

/// A finite execution script.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schedule<Op> {
    /// The transition labels, in order.
    pub steps: Vec<Step<Op>>,
}

impl<Op> Schedule<Op> {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule { steps: Vec::new() }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The number of branches that exist after running the schedule
    /// (including the root).
    pub fn branch_count(&self) -> usize {
        1 + self
            .steps
            .iter()
            .filter(|s| matches!(s, Step::CreateBranch { .. }))
            .count()
    }

    /// Whether every step refers only to branches that exist when it runs.
    pub fn is_well_formed(&self) -> bool {
        let mut branches = 1usize;
        for step in &self.steps {
            match step {
                Step::CreateBranch { from } => {
                    if *from >= branches {
                        return false;
                    }
                    branches += 1;
                }
                Step::Do { branch, .. } => {
                    if *branch >= branches {
                        return false;
                    }
                }
                Step::Merge { into, from } => {
                    if *into >= branches || *from >= branches {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl<Op> FromIterator<Step<Op>> for Schedule<Op> {
    fn from_iter<I: IntoIterator<Item = Step<Op>>>(iter: I) -> Self {
        Schedule {
            steps: iter.into_iter().collect(),
        }
    }
}

impl<Op: fmt::Debug> fmt::Display for Schedule<Op> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "{i:>4}: {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formedness_tracks_branch_creation() {
        let ok: Schedule<u8> = [
            Step::Do { branch: 0, op: 1 },
            Step::CreateBranch { from: 0 },
            Step::Do { branch: 1, op: 2 },
            Step::Merge { into: 0, from: 1 },
        ]
        .into_iter()
        .collect();
        assert!(ok.is_well_formed());
        assert_eq!(ok.branch_count(), 2);

        let bad: Schedule<u8> = [Step::Do { branch: 1, op: 1 }].into_iter().collect();
        assert!(!bad.is_well_formed());

        let bad_merge: Schedule<u8> = [Step::Merge { into: 0, from: 3 }].into_iter().collect();
        assert!(!bad_merge.is_well_formed());
    }

    #[test]
    fn display_renders_labels() {
        let s: Schedule<u8> = [
            Step::CreateBranch { from: 0 },
            Step::Do { branch: 1, op: 9 },
            Step::Merge { into: 0, from: 1 },
        ]
        .into_iter()
        .collect();
        let text = s.to_string();
        assert!(text.contains("CREATEBRANCH"));
        assert!(text.contains("DO(9, b1)"));
        assert!(text.contains("MERGE(b0 ← b1)"));
    }
}

//! Packaged certification runs for every data type in `peepul-types` — the
//! workspace's analogue of the paper's Table 3 (verification effort per
//! MRDT).
//!
//! For each data type the suite runs (a) a bounded-exhaustive pass over a
//! small conflicting-operation alphabet and (b) a batch of long seeded
//! random executions, counting how many obligation instances were checked
//! and how long certification took. The queue additionally re-checks the
//! declarative queue axioms of §6.2 on every final abstract state.

use crate::bounded::{BoundedChecker, BoundedConfig};
use crate::generator::{RandomConfig, ScheduleGenerator};
use crate::ralin::{check_fleet, replay_seed, FleetConfig, RaLinOptions, RaLinStats};
use crate::runner::{MergePolicy, Runner};
use peepul_core::obligations::Certified;
use peepul_core::ObligationReport;
use peepul_net::ReplicationMutation;
use peepul_store::Snapshot;
use peepul_types::chat::{Chat, ChatOp, ChatQuery};
use peepul_types::counter::{Counter, CounterOp, CounterQuery};
use peepul_types::ew_flag::{EwFlag, EwFlagOp, EwFlagQuery, EwFlagSpace};
use peepul_types::g_set::{GSet, GSetOp, GSetQuery};
use peepul_types::log::{LogOp, LogQuery, MergeableLog};
use peepul_types::lww_register::{LwwOp, LwwQuery, LwwRegister};
use peepul_types::map::{MapOp, MapQuery, MrdtMap};
use peepul_types::or_set::{OrSet, OrSetOp, OrSetQuery};
use peepul_types::or_set_space::OrSetSpace;
use peepul_types::or_set_spacetime::OrSetSpacetime;
use peepul_types::pn_counter::{PnCounter, PnCounterOp, PnCounterQuery};
use peepul_types::queue::{self, Queue, QueueOp, QueueQuery};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::{Duration, Instant};

/// Suite-wide configuration.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Depth of the bounded-exhaustive pass.
    pub bounded_steps: usize,
    /// Branch budget of the bounded-exhaustive pass.
    pub bounded_branches: usize,
    /// Number of random executions per data type.
    pub random_runs: usize,
    /// Shape of each random execution.
    pub random: RandomConfig,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            bounded_steps: 4,
            bounded_branches: 2,
            random_runs: 20,
            random: RandomConfig {
                steps: 150,
                max_branches: 4,
                ..RandomConfig::default()
            },
        }
    }
}

/// Outcome of certifying one data type.
#[derive(Clone, Debug)]
pub struct CertificationSummary {
    /// Data type name.
    pub name: &'static str,
    /// Maximal executions explored by the bounded pass.
    pub bounded_executions: u64,
    /// Transitions checked by the bounded pass.
    pub bounded_transitions: u64,
    /// Wall-clock time of the bounded pass.
    pub bounded_time: Duration,
    /// Random executions run.
    pub random_runs: u64,
    /// Transitions checked by the random pass.
    pub random_transitions: u64,
    /// Wall-clock time of the random pass.
    pub random_time: Duration,
    /// Obligation instances checked, both passes combined.
    pub obligations: ObligationReport,
    /// The merge policy the type is certified under (see [`MergePolicy`]):
    /// space-optimized types are certified relative to the paper's
    /// strong-Ψ_lca store envelope.
    pub policy: MergePolicy,
    /// Merges skipped by the envelope restriction (0 under
    /// [`MergePolicy::General`]).
    pub skipped_merges: u64,
    /// `None` when certification succeeded; the failure rendering
    /// otherwise.
    pub failure: Option<String>,
}

impl CertificationSummary {
    /// Whether every obligation held on every explored execution.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Total certification time.
    pub fn total_time(&self) -> Duration {
        self.bounded_time + self.random_time
    }
}

/// Certifies one data type: a bounded-exhaustive pass over the **update**
/// `alphabet` followed by `config.random_runs` random executions drawing
/// operations from `random_op`. The `queries` probe set is checked
/// (`Φ_spec`) against the post-state of every transition in both passes —
/// queries no longer appear as schedule steps, so the probes are what
/// certifies the observation side of the query/update split. `final_check`
/// runs against the final snapshots of every random execution (used for
/// the queue axioms); pass `|_| Ok(())` when not needed.
pub fn certify_type<M, F, G>(
    name: &'static str,
    config: &SuiteConfig,
    policy: MergePolicy,
    alphabet: Vec<M::Op>,
    queries: Vec<M::Query>,
    mut random_op: F,
    final_check: G,
) -> CertificationSummary
where
    M: Certified,
    M::Op: PartialEq,
    F: FnMut(&mut StdRng) -> M::Op,
    G: Fn(&[(String, Snapshot<M>)]) -> Result<(), String>,
{
    let mut obligations = ObligationReport::default();
    let mut failure = None;
    let mut skipped_merges = 0u64;

    // Bounded-exhaustive pass.
    let start = Instant::now();
    let checker = BoundedChecker::<M>::new(BoundedConfig {
        max_steps: config.bounded_steps,
        max_branches: config.bounded_branches,
        alphabet,
        queries: queries.clone(),
    })
    .with_policy(policy);
    let (bounded_executions, bounded_transitions) = match checker.run() {
        Ok(stats) => {
            obligations.absorb(&stats.obligations);
            (stats.executions, stats.transitions)
        }
        Err(e) => {
            failure = Some(format!("bounded pass: {e}"));
            (0, 0)
        }
    };
    let bounded_time = start.elapsed();

    // Randomized pass.
    let start = Instant::now();
    let mut random_transitions = 0u64;
    let mut runs_done = 0u64;
    if failure.is_none() {
        // A failure names its seed; PEEPUL_REPLAY=<seed> re-runs exactly
        // that schedule (and only it).
        let replay = replay_seed();
        'runs: for run in 0..config.random_runs {
            let seed = replay.unwrap_or_else(|| config.random.seed.wrapping_add(run as u64));
            let mut gen = ScheduleGenerator::new(RandomConfig {
                seed,
                ..config.random.clone()
            });
            let schedule = gen.generate(&mut random_op);
            let mut runner: Runner<M> = Runner::with_policy(policy).with_queries(queries.clone());
            if let Err(e) = runner.run_schedule(&schedule) {
                failure = Some(format!(
                    "random run {run} (seed {seed}): {e} — re-run with PEEPUL_REPLAY={seed}"
                ));
                break 'runs;
            }
            random_transitions += runner.steps_run() as u64;
            skipped_merges += runner.skipped_merges() as u64;
            obligations.absorb(&runner.report());
            runs_done += 1;
            if let Err(e) = final_check(&runner.snapshots()) {
                failure = Some(format!(
                    "random run {run} (seed {seed}), final check: {e} — re-run with \
                     PEEPUL_REPLAY={seed}"
                ));
                break 'runs;
            }
            if replay.is_some() {
                break 'runs;
            }
        }
    }
    let random_time = start.elapsed();

    CertificationSummary {
        name,
        bounded_executions,
        bounded_transitions,
        bounded_time,
        random_runs: runs_done,
        random_transitions,
        random_time,
        obligations,
        policy,
        skipped_merges,
        failure,
    }
}

fn no_final_check<M: Certified>(_: &[(String, Snapshot<M>)]) -> Result<(), String> {
    Ok(())
}

/// Certifies the increment-only counter.
pub fn certify_counter(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<Counter, _, _>(
        "Increment-only counter",
        config,
        MergePolicy::General,
        vec![CounterOp::Increment],
        vec![CounterQuery::Value],
        |_rng| CounterOp::Increment,
        no_final_check,
    )
}

/// Certifies the PN counter.
pub fn certify_pn_counter(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<PnCounter, _, _>(
        "PN counter",
        config,
        MergePolicy::General,
        vec![PnCounterOp::Increment, PnCounterOp::Decrement],
        vec![PnCounterQuery::Value],
        |rng| {
            if rng.gen_bool(0.5) {
                PnCounterOp::Increment
            } else {
                PnCounterOp::Decrement
            }
        },
        no_final_check,
    )
}

fn random_flag_op(rng: &mut StdRng) -> EwFlagOp {
    if rng.gen_bool(0.5) {
        EwFlagOp::Enable
    } else {
        EwFlagOp::Disable
    }
}

/// Certifies the token-set enable-wins flag.
pub fn certify_ew_flag(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<EwFlag, _, _>(
        "Enable-wins flag",
        config,
        MergePolicy::General,
        vec![EwFlagOp::Enable, EwFlagOp::Disable],
        vec![EwFlagQuery::Read],
        random_flag_op,
        no_final_check,
    )
}

/// Certifies the space-efficient enable-wins flag.
pub fn certify_ew_flag_space(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<EwFlagSpace, _, _>(
        "Enable-wins flag (space)",
        config,
        MergePolicy::PaperEnvelope,
        vec![EwFlagOp::Enable, EwFlagOp::Disable],
        vec![EwFlagQuery::Read],
        random_flag_op,
        no_final_check,
    )
}

/// Certifies the last-writer-wins register.
pub fn certify_lww_register(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<LwwRegister<u32>, _, _>(
        "LWW register",
        config,
        MergePolicy::General,
        vec![LwwOp::Write(1), LwwOp::Write(2)],
        vec![LwwQuery::Read],
        |rng| LwwOp::Write(rng.gen_range(0..100)),
        no_final_check,
    )
}

/// Certifies the grow-only set.
pub fn certify_g_set(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<GSet<u32>, _, _>(
        "G-set",
        config,
        MergePolicy::General,
        vec![GSetOp::Add(1), GSetOp::Add(2)],
        vec![GSetQuery::Lookup(1), GSetQuery::Lookup(19), GSetQuery::Read],
        |rng| GSetOp::Add(rng.gen_range(0..20)),
        no_final_check,
    )
}

/// Certifies the grow-only map of counters (α-map composition).
pub fn certify_g_map(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<MrdtMap<Counter>, _, _>(
        "G-map (α-map of counters)",
        config,
        MergePolicy::General,
        vec![
            MapOp::Set("k".into(), CounterOp::Increment),
            MapOp::Set("j".into(), CounterOp::Increment),
        ],
        vec![
            MapQuery::Get("k".into(), CounterQuery::Value),
            MapQuery::Get("j".into(), CounterQuery::Value),
            MapQuery::Get("absent".into(), CounterQuery::Value),
        ],
        |rng| {
            let key = if rng.gen_bool(0.5) { "k" } else { "j" };
            MapOp::Set(key.into(), CounterOp::Increment)
        },
        no_final_check,
    )
}

/// Certifies the mergeable log.
pub fn certify_log(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<MergeableLog<u32>, _, _>(
        "Mergeable log",
        config,
        MergePolicy::General,
        vec![LogOp::Append(1), LogOp::Append(2)],
        vec![LogQuery::Read],
        |rng| LogOp::Append(rng.gen_range(0..100)),
        no_final_check,
    )
}

fn random_set_op(rng: &mut StdRng) -> OrSetOp<u32> {
    let x = rng.gen_range(0..10);
    if rng.gen_bool(2.0 / 3.0) {
        OrSetOp::Add(x)
    } else {
        OrSetOp::Remove(x)
    }
}

fn orset_alphabet() -> Vec<OrSetOp<u32>> {
    vec![OrSetOp::Add(1), OrSetOp::Remove(1), OrSetOp::Add(2)]
}

fn orset_probes() -> Vec<OrSetQuery<u32>> {
    vec![
        OrSetQuery::Lookup(1),
        OrSetQuery::Lookup(2),
        OrSetQuery::Read,
    ]
}

/// Certifies the unoptimized OR-set.
pub fn certify_or_set(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<OrSet<u32>, _, _>(
        "OR-set",
        config,
        MergePolicy::General,
        orset_alphabet(),
        orset_probes(),
        random_set_op,
        no_final_check,
    )
}

/// Certifies the space-efficient OR-set.
pub fn certify_or_set_space(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<OrSetSpace<u32>, _, _>(
        "OR-set-space",
        config,
        MergePolicy::PaperEnvelope,
        orset_alphabet(),
        orset_probes(),
        random_set_op,
        no_final_check,
    )
}

/// Certifies the tree-backed OR-set.
pub fn certify_or_set_spacetime(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<OrSetSpacetime<u32>, _, _>(
        "OR-set-spacetime",
        config,
        MergePolicy::PaperEnvelope,
        orset_alphabet(),
        orset_probes(),
        random_set_op,
        no_final_check,
    )
}

/// Certifies the replicated queue, additionally asserting the declarative
/// queue axioms (`AddRem`, `Empty`, `FIFO_1`, `FIFO_2`) on the final
/// abstract state of every branch of every random execution.
pub fn certify_queue(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<Queue<u32>, _, _>(
        "Replicated queue",
        config,
        MergePolicy::General,
        vec![QueueOp::Enqueue(1), QueueOp::Enqueue(2), QueueOp::Dequeue],
        vec![QueueQuery::Peek],
        |rng| {
            if rng.gen_bool(0.6) {
                QueueOp::Enqueue(rng.gen_range(0..100))
            } else {
                QueueOp::Dequeue
            }
        },
        |snapshots| {
            for (branch, snap) in snapshots {
                if !queue::axioms::all(&snap.abstract_state) {
                    return Err(format!("queue axioms violated on branch {branch}"));
                }
            }
            Ok(())
        },
    )
}

/// Certifies the IRC-style chat (α-map of mergeable logs).
pub fn certify_chat(config: &SuiteConfig) -> CertificationSummary {
    certify_type::<Chat, _, _>(
        "IRC chat (map of logs)",
        config,
        MergePolicy::General,
        vec![
            ChatOp::Send("#a".into(), "x".into()),
            ChatOp::Send("#b".into(), "y".into()),
        ],
        vec![
            ChatQuery::Read("#a".into()),
            ChatQuery::Read("#b".into()),
            ChatQuery::Read("#silent".into()),
        ],
        |rng| {
            let ch = if rng.gen_bool(0.5) { "#a" } else { "#b" };
            ChatOp::Send(ch.into(), format!("m{}", rng.gen_range(0..1000)))
        },
        no_final_check,
    )
}

/// Shape of a replication-certification (`Φ_ra`) run: how many
/// fault-injected fleet executions per data type, and the fleet shape of
/// each. Failures print the failing run's seed; set `PEEPUL_REPLAY=<seed>`
/// to replay exactly that schedule.
#[derive(Clone, Debug)]
pub struct RaLinSuiteConfig {
    /// Fleet executions per data type.
    pub runs: usize,
    /// Independent replicas per fleet.
    pub replicas: usize,
    /// Operations per replica per fleet.
    pub ops_per_replica: usize,
    /// Ring-gossip period during the run.
    pub gossip_every: usize,
    /// Base seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Seeded per-link message loss, in per-mille.
    pub loss_per_mille: u16,
    /// Partition one replica for the whole run (healed before
    /// anti-entropy).
    pub partition_one: bool,
    /// Replication-layer mutant to enact during the runs
    /// ([`ReplicationMutation::None`] for a faithful layer). Non-`None`
    /// values exist to *fail*: they drive the kill-gate and the
    /// seed-replay test.
    pub mutation: ReplicationMutation,
}

impl Default for RaLinSuiteConfig {
    fn default() -> Self {
        RaLinSuiteConfig {
            runs: 5,
            replicas: 8,
            ops_per_replica: 10,
            gossip_every: 3,
            seed: RandomConfig::default().seed,
            loss_per_mille: 100,
            partition_one: true,
            mutation: ReplicationMutation::None,
        }
    }
}

/// Outcome of replication-certifying one data type under `Φ_ra`.
#[derive(Clone, Debug)]
pub struct RaLinSummary {
    /// Data type name.
    pub name: &'static str,
    /// Fleet executions checked.
    pub runs: u64,
    /// Accumulated checker statistics across all runs.
    pub stats: RaLinStats,
    /// Wall-clock time of all runs.
    pub time: Duration,
    /// Whether the specification replays were skipped
    /// ([`RaLinOptions::structural`] — types certified relative to the
    /// merge envelope, whose spec is not owed over arbitrary fleet
    /// merges).
    pub structural: bool,
    /// `None` when every run certified; the first failure otherwise,
    /// including the seed that replays it.
    pub failure: Option<String>,
}

impl RaLinSummary {
    /// Whether every fleet execution was replication-aware linearizable.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Replication-certifies one data type: `config.runs` fault-injected
/// fleet executions, each recorded as a witness history and checked with
/// `Φ_ra`. `op_of` derives each operation from a
/// [`fleet_entropy`](crate::ralin::fleet_entropy) value, so a run is a
/// pure function of its seed; on failure the seed is named in the
/// failure message and `PEEPUL_REPLAY=<seed>` re-runs exactly that
/// schedule.
pub fn ra_lin_type<M>(
    name: &'static str,
    config: &RaLinSuiteConfig,
    options: RaLinOptions,
    op_of: impl Fn(u64) -> M::Op + Send + Sync,
    probes: Vec<M::Query>,
) -> RaLinSummary
where
    M: Certified + Send + Sync + 'static,
    M::Op: Send,
    M::Value: Send,
    M::Query: Send,
    M::Output: Send,
{
    let start = Instant::now();
    let mut stats = RaLinStats::default();
    let mut failure = None;
    let mut runs_done = 0u64;
    let replay = replay_seed();
    for run in 0..config.runs {
        let seed = replay.unwrap_or_else(|| config.seed.wrapping_add(run as u64));
        let fleet = FleetConfig {
            replicas: config.replicas,
            ops_per_replica: config.ops_per_replica,
            gossip_every: config.gossip_every,
            seed,
            loss_per_mille: config.loss_per_mille,
            partition_one: config.partition_one,
            options,
            mutation: config.mutation,
        };
        match check_fleet::<M>(&fleet, &op_of, &probes) {
            Ok(s) => {
                stats.absorb(&s);
                runs_done += 1;
            }
            Err(e) => {
                failure = Some(format!(
                    "fleet run {run} (seed {seed}): {e} — re-run with PEEPUL_REPLAY={seed}"
                ));
                break;
            }
        }
        if replay.is_some() {
            break; // replaying one specific schedule
        }
    }
    RaLinSummary {
        name,
        runs: runs_done,
        stats,
        time: start.elapsed(),
        structural: !options.replay_rvals && !options.replay_queries,
        failure,
    }
}

/// `Φ_ra` for the increment-only counter fleet.
pub fn ra_lin_counter(config: &RaLinSuiteConfig) -> RaLinSummary {
    ra_lin_type::<Counter>(
        "Increment-only counter",
        config,
        RaLinOptions::default(),
        |_| CounterOp::Increment,
        vec![CounterQuery::Value],
    )
}

/// `Φ_ra` for the LWW-register fleet.
pub fn ra_lin_lww_register(config: &RaLinSuiteConfig) -> RaLinSummary {
    ra_lin_type::<LwwRegister<u32>>(
        "LWW register",
        config,
        RaLinOptions::default(),
        |s| LwwOp::Write((s % 100) as u32),
        vec![LwwQuery::Read],
    )
}

/// `Φ_ra` for the replicated-queue fleet.
pub fn ra_lin_queue(config: &RaLinSuiteConfig) -> RaLinSummary {
    ra_lin_type::<Queue<u32>>(
        "Replicated queue",
        config,
        RaLinOptions::default(),
        |s| {
            if s % 5 < 3 {
                QueueOp::Enqueue((s % 100) as u32)
            } else {
                QueueOp::Dequeue
            }
        },
        vec![QueueQuery::Peek],
    )
}

/// `Φ_ra` for the mergeable-log fleet.
pub fn ra_lin_log(config: &RaLinSuiteConfig) -> RaLinSummary {
    ra_lin_type::<MergeableLog<u32>>(
        "Mergeable log",
        config,
        RaLinOptions::default(),
        |s| LogOp::Append((s % 100) as u32),
        vec![LogQuery::Read],
    )
}

/// `Φ_ra` for the α-map-of-counters fleet.
pub fn ra_lin_g_map(config: &RaLinSuiteConfig) -> RaLinSummary {
    ra_lin_type::<MrdtMap<Counter>>(
        "G-map (α-map of counters)",
        config,
        RaLinOptions::default(),
        |s| {
            let key = if s % 2 == 0 { "k" } else { "j" };
            MapOp::Set(key.into(), CounterOp::Increment)
        },
        vec![
            MapQuery::Get("k".into(), CounterQuery::Value),
            MapQuery::Get("j".into(), CounterQuery::Value),
        ],
    )
}

/// `Φ_ra` for the space-efficient OR-set fleet — **structural mode**: the
/// type is certified relative to the paper's strong-Ψ_lca merge envelope
/// ([`MergePolicy::PaperEnvelope`]), and a fleet's gossip merges are
/// arbitrary, so its declarative spec is not owed over them. The
/// structural axioms (happens-before consistency, causal delivery,
/// monotonic visibility, session guarantees) are checked in full.
pub fn ra_lin_or_set_space(config: &RaLinSuiteConfig) -> RaLinSummary {
    ra_lin_type::<OrSetSpace<u32>>(
        "OR-set-space",
        config,
        RaLinOptions::structural(),
        |s| {
            let x = (s % 10) as u32;
            if s % 3 < 2 {
                OrSetOp::Add(x)
            } else {
                OrSetOp::Remove(x)
            }
        },
        orset_probes(),
    )
}

/// Replication-certifies the `Φ_ra` fleet suite: one entry per data type.
pub fn certify_replication(config: &RaLinSuiteConfig) -> Vec<RaLinSummary> {
    vec![
        ra_lin_counter(config),
        ra_lin_lww_register(config),
        ra_lin_queue(config),
        ra_lin_log(config),
        ra_lin_g_map(config),
        ra_lin_or_set_space(config),
    ]
}

/// Certifies every data type in `peepul-types`, in Table 3 order.
pub fn certify_all(config: &SuiteConfig) -> Vec<CertificationSummary> {
    vec![
        certify_counter(config),
        certify_pn_counter(config),
        certify_ew_flag(config),
        certify_ew_flag_space(config),
        certify_lww_register(config),
        certify_g_set(config),
        certify_g_map(config),
        certify_log(config),
        certify_or_set(config),
        certify_or_set_space(config),
        certify_or_set_spacetime(config),
        certify_queue(config),
        certify_chat(config),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SuiteConfig {
        SuiteConfig {
            bounded_steps: 3,
            bounded_branches: 2,
            random_runs: 3,
            random: RandomConfig {
                steps: 60,
                max_branches: 3,
                ..RandomConfig::default()
            },
        }
    }

    #[test]
    fn counter_certifies() {
        let s = certify_counter(&quick());
        assert!(s.passed(), "{:?}", s.failure);
        assert!(s.obligations.total() > 0);
    }

    #[test]
    fn or_sets_certify() {
        for s in [
            certify_or_set(&quick()),
            certify_or_set_space(&quick()),
            certify_or_set_spacetime(&quick()),
        ] {
            assert!(s.passed(), "{}: {:?}", s.name, s.failure);
        }
    }

    #[test]
    fn queue_certifies_with_axioms() {
        let s = certify_queue(&quick());
        assert!(s.passed(), "{:?}", s.failure);
    }

    #[test]
    fn composites_certify() {
        for s in [certify_g_map(&quick()), certify_chat(&quick())] {
            assert!(s.passed(), "{}: {:?}", s.name, s.failure);
        }
    }
}

//! The **codec mutant kill-gate**: deliberately broken codec/delta
//! implementations that every obligation *except* `Φ_codec` waves
//! through, run under the bounded checker so CI can hard-fail if the
//! codec obligation ever stops catching them.
//!
//! Since delta sync, `Φ_codec` carries three laws at every explored
//! state σ: the canonical round-trip (`decode(encode(σ)) ≅ σ`,
//! re-encoding byte-identically), and the delta-resolution law against
//! every probed base p (`apply_delta(p, σ.diff(p)) ≅ σ`, re-encoding to
//! `encode(σ)` — the content-address preimage). Each mutant here breaks
//! exactly one of those laws while keeping merge, query and the
//! simulation relation honest, so a kill proves the codec obligation —
//! and only it — is doing the work. The gallery in
//! `crates/verify/tests/mutants.rs` pins the same faults as unit tests;
//! this module is the *reportable* form `verify_report` folds into its
//! JSON and gates on.

use crate::{BoundedChecker, BoundedConfig, CertificationError};
use peepul_core::{
    AbstractOf, Certified, Delta, Mrdt, Obligation, SimulationRelation, Specification, Timestamp,
    Wire,
};

/// What happened to one deliberately broken codec under the kill-gate:
/// the same bounded scenario is run against a faithful twin (which must
/// certify) and the mutant (which `Φ_codec` must reject).
#[derive(Clone, Debug)]
pub struct CodecMutantOutcome {
    /// Which codec law the mutant breaks.
    pub mutation: &'static str,
    /// The faithful twin certified cleanly under the same bounds.
    pub baseline_ok: bool,
    /// The mutant was rejected, and by [`Obligation::Codec`] —
    /// not merely tripped over by some other obligation.
    pub killed: bool,
    /// The counterexample (or survival description).
    pub detail: String,
}

impl CodecMutantOutcome {
    /// The kill-gate verdict: clean baseline, mutant dead to `Φ_codec`.
    pub fn caught(&self) -> bool {
        self.baseline_ok && self.killed
    }
}

/// Increment — the only operation the mutant counters support.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Inc;

/// Read the count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReadQ;

/// Everything except `Wire`/`diff`/`apply_delta` is shared and honest:
/// the counter semantics, its specification and simulation relation.
macro_rules! counter_mutant {
    ($ty:ident, $spec:ident, $sim:ident) => {
        impl Mrdt for $ty {
            type Op = Inc;
            type Value = ();
            type Query = ReadQ;
            type Output = u64;
            fn initial() -> Self {
                $ty(0)
            }
            fn apply(&self, _op: &Inc, _t: Timestamp) -> (Self, ()) {
                ($ty(self.0 + 1), ())
            }
            fn query(&self, _q: &ReadQ) -> u64 {
                self.0
            }
            fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
                $ty(a.0 + b.0 - lca.0)
            }
            counter_mutant!(@delta $ty);
        }
        struct $spec;
        impl Specification<$ty> for $spec {
            fn spec(_op: &Inc, _abs: &AbstractOf<$ty>) {}
            fn query(_q: &ReadQ, abs: &AbstractOf<$ty>) -> u64 {
                abs.events().count() as u64
            }
        }
        struct $sim;
        impl SimulationRelation<$ty> for $sim {
            fn holds(abs: &AbstractOf<$ty>, conc: &$ty) -> bool {
                conc.0 == abs.events().count() as u64
            }
        }
        impl Certified for $ty {
            type Spec = $spec;
            type Sim = $sim;
        }
    };
    (@delta FaithfulCounter) => {};
    (@delta DriftedDeltaCounter) => {
        fn diff(&self, parent: &Self) -> Delta {
            // BUG: claims "no change" — resolves to the parent's bytes.
            Delta::splice(&parent.to_wire(), &parent.to_wire())
        }
    };
    (@delta $ty:ident) => {};
}

/// Honest u64 codec, shared by the mutants whose fault is elsewhere.
macro_rules! honest_wire {
    ($ty:ident) => {
        impl Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some($ty(Wire::decode(input)?))
            }
        }
    };
}

/// The faithful twin: every law holds. Its clean run is the baseline
/// that proves the scenario itself is sound.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct FaithfulCounter(u64);
honest_wire!(FaithfulCounter);
counter_mutant!(FaithfulCounter, FaithfulSpec, FaithfulSim);

/// Breaks the round-trip law: encode narrows to u32, decode reads u64.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct DriftedEncodeCounter(u64);
impl Wire for DriftedEncodeCounter {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0 as u32).encode(out); // BUG: 4 bytes out…
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(DriftedEncodeCounter(Wire::decode(input)?)) // …8 bytes back
    }
}
counter_mutant!(DriftedEncodeCounter, DriftedEncodeSpec, DriftedEncodeSim);

/// Breaks the delta-resolution law: `diff` emits a well-formed delta
/// that resolves to the *parent*, not the child.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct DriftedDeltaCounter(u64);
honest_wire!(DriftedDeltaCounter);
counter_mutant!(DriftedDeltaCounter, DriftedDeltaSpec, DriftedDeltaSim);

/// Runs the shared bounded scenario for one type and classifies the
/// result: `Ok(None)` for a clean run, `Ok(Some(detail))` for a
/// `Φ_codec` kill, `Err(detail)` for any other outcome.
fn bounded_verdict<M: Certified<Op = Inc, Query = ReadQ>>() -> Result<Option<String>, String> {
    let checker = BoundedChecker::<M>::new(BoundedConfig {
        max_steps: 3,
        max_branches: 2,
        alphabet: vec![Inc],
        queries: vec![ReadQ],
    });
    match checker.run() {
        Ok(_) => Ok(None),
        Err(CertificationError::Obligation { error, step, .. }) => {
            if error.obligation() == Obligation::Codec {
                Ok(Some(format!("{error} at {step}")))
            } else {
                Err(format!("rejected by the wrong obligation: {error}"))
            }
        }
        Err(other) => Err(format!("non-obligation failure: {other}")),
    }
}

/// The codec mutant kill-gate: certifies the faithful twin, then runs
/// each codec mutant under the same bounds and reports whether
/// `Φ_codec` — specifically — killed it. CI hard-fails on any survivor.
pub fn run_codec_mutants() -> Vec<CodecMutantOutcome> {
    let baseline_ok = matches!(bounded_verdict::<FaithfulCounter>(), Ok(None));
    let outcome = |mutation: &'static str, verdict: Result<Option<String>, String>| {
        let (killed, detail) = match verdict {
            Ok(Some(detail)) => (true, detail),
            Ok(None) => (false, "mutant survived Φ_codec".to_owned()),
            Err(detail) => (false, detail),
        };
        CodecMutantOutcome {
            mutation,
            baseline_ok,
            killed,
            detail,
        }
    };
    vec![
        outcome("drifted-encode", bounded_verdict::<DriftedEncodeCounter>()),
        outcome("drifted-delta", bounded_verdict::<DriftedDeltaCounter>()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gate itself: baseline clean, every mutant dead to `Φ_codec`.
    #[test]
    fn every_codec_mutant_dies_to_phi_codec() {
        let outcomes = run_codec_mutants();
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(
                o.baseline_ok,
                "baseline failed for {}: {}",
                o.mutation, o.detail
            );
            assert!(o.caught(), "{} survived: {}", o.mutation, o.detail);
        }
    }
}

//! `proptest` strategies for store schedules.
//!
//! Randomized certification in [`crate::generator`] uses fixed seeds and is
//! replayable; the strategies here add *shrinking*: when a property over
//! schedules fails, proptest minimises the failing schedule, usually down
//! to the two-or-three-step core of the bug. Used by the workspace's
//! property tests and available to downstream data type authors.

use crate::schedule::{Schedule, Step};
use proptest::prelude::*;

/// Strategy for one step given the operation strategy and the *maximum*
/// number of branches that could exist at that point.
///
/// Branch indices are generated modulo the branch count at execution time
/// by [`normalize`], so shrinking never produces an ill-formed schedule.
fn raw_step<Op: std::fmt::Debug + Clone + 'static>(
    op: impl Strategy<Value = Op> + Clone + 'static,
) -> impl Strategy<Value = RawStep<Op>> {
    prop_oneof![
        1 => Just(RawStep::Create { from: 0 }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(into, from)| RawStep::Merge {
            into: into as usize,
            from: from as usize,
        }),
        7 => (any::<u8>(), op).prop_map(|(branch, op)| RawStep::Do {
            branch: branch as usize,
            op,
        }),
    ]
}

/// Un-normalized steps: branch indices may exceed the branch count and are
/// wrapped during normalization.
#[derive(Clone, Debug)]
enum RawStep<Op> {
    Create { from: usize },
    Do { branch: usize, op: Op },
    Merge { into: usize, from: usize },
}

/// Turns raw steps into a well-formed schedule: branch references are
/// wrapped modulo the live branch count, branch creation respects
/// `max_branches`, and self-merges are dropped.
fn normalize<Op>(raw: Vec<RawStep<Op>>, max_branches: usize) -> Schedule<Op> {
    let mut steps = Vec::with_capacity(raw.len());
    let mut branches = 1usize;
    for r in raw {
        match r {
            RawStep::Create { from } => {
                if branches < max_branches {
                    steps.push(Step::CreateBranch {
                        from: from % branches,
                    });
                    branches += 1;
                }
            }
            RawStep::Do { branch, op } => steps.push(Step::Do {
                branch: branch % branches,
                op,
            }),
            RawStep::Merge { into, from } => {
                let into = into % branches;
                let from = from % branches;
                if into != from {
                    steps.push(Step::Merge { into, from });
                }
            }
        }
    }
    Schedule { steps }
}

/// A strategy producing well-formed schedules of up to `max_steps` steps
/// over at most `max_branches` branches, with `DO` operations drawn from
/// `op`.
///
/// # Example
///
/// ```
/// use proptest::prelude::*;
/// use peepul_verify::proptest_support::schedules;
/// use peepul_verify::Runner;
/// use peepul_types::g_set::{GSet, GSetOp};
///
/// proptest!(|(s in schedules(0u32..8, 20, 3).prop_map(|s| s))| {
///     let schedule = s.map_ops(GSetOp::Add);
///     let mut runner: Runner<GSet<u32>> = Runner::new();
///     prop_assert!(runner.run_schedule(&schedule).is_ok());
/// });
/// ```
pub fn schedules<Op: std::fmt::Debug + Clone + 'static>(
    op: impl Strategy<Value = Op> + Clone + 'static,
    max_steps: usize,
    max_branches: usize,
) -> impl Strategy<Value = Schedule<Op>> {
    proptest::collection::vec(raw_step(op), 0..=max_steps)
        .prop_map(move |raw| normalize(raw, max_branches))
}

impl<Op> Schedule<Op> {
    /// Maps every `DO` operation through `f`, keeping the branch structure
    /// — handy for reusing one generated shape across operation types.
    pub fn map_ops<Op2>(self, mut f: impl FnMut(Op) -> Op2) -> Schedule<Op2> {
        Schedule {
            steps: self
                .steps
                .into_iter()
                .map(|s| match s {
                    Step::CreateBranch { from } => Step::CreateBranch { from },
                    Step::Merge { into, from } => Step::Merge { into, from },
                    Step::Do { branch, op } => Step::Do { branch, op: f(op) },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use peepul_types::or_set::{OrSet, OrSetOp, OrSetQuery};
    use peepul_types::pn_counter::{PnCounter, PnCounterOp, PnCounterQuery};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_schedules_are_well_formed(
            s in schedules(0u32..4, 40, 4)
        ) {
            prop_assert!(s.is_well_formed());
            prop_assert!(s.branch_count() <= 4);
        }

        #[test]
        fn pn_counter_certifies_on_arbitrary_schedules(
            s in schedules(0u8..2, 25, 3)
        ) {
            let schedule = s.map_ops(|k| match k {
                0 => PnCounterOp::Increment,
                _ => PnCounterOp::Decrement,
            });
            let mut runner: Runner<PnCounter> =
                Runner::new().with_queries(vec![PnCounterQuery::Value]);
            prop_assert!(runner.run_schedule(&schedule).is_ok());
        }

        #[test]
        fn or_set_certifies_on_arbitrary_schedules(
            s in schedules((0u8..3, 0u32..5), 20, 3)
        ) {
            let schedule = s.map_ops(|(k, x)| match k {
                0 | 1 => OrSetOp::Add(x),
                _ => OrSetOp::Remove(x),
            });
            let mut runner: Runner<OrSet<u32>> = Runner::new()
                .with_queries(vec![OrSetQuery::Lookup(1), OrSetQuery::Read]);
            prop_assert!(runner.run_schedule(&schedule).is_ok());
        }
    }

    #[test]
    fn map_ops_preserves_structure() {
        let s: Schedule<u8> = Schedule {
            steps: vec![
                Step::Do { branch: 0, op: 1 },
                Step::CreateBranch { from: 0 },
                Step::Merge { into: 0, from: 1 },
            ],
        };
        let mapped = s.clone().map_ops(|x| x as u32 * 10);
        assert_eq!(mapped.len(), 3);
        assert!(matches!(mapped.steps[0], Step::Do { op: 10, .. }));
        assert!(matches!(mapped.steps[1], Step::CreateBranch { from: 0 }));
    }
}

//! The certification runner: drives the store LTS and checks every proof
//! obligation at every transition.
//!
//! This is the executable counterpart of the paper's soundness argument
//! (Theorem 4.2): the proof is an induction over transitions, and the
//! runner performs that induction concretely — at each `DO` it checks
//! `Φ_spec` and `Φ_do`, at each `MERGE` it checks `Ψ_lca` and `Φ_merge`,
//! and after every transition it checks `Φ_con` across all branch pairs
//! plus the `Φ_codec` canonical-codec round-trip on the post-state (the
//! single codec is the storage format, the wire format and the content
//! address, so a codec that drifts from its data type would corrupt all
//! three — the harness certifies it alongside the paper's obligations).
//! Any violation is reported with the failing step and a counterexample
//! description.

use crate::schedule::{Schedule, Step};
use peepul_core::obligations::{
    check_codec, check_con, check_do, check_merge, check_queries, Certified,
};
use peepul_core::store_props::psi_lca_paper;
use peepul_core::{ObligationError, ObligationReport};
use peepul_store::{Snapshot, StoreError, StoreLts};
use std::error::Error;
use std::fmt;

/// Which merges the store is allowed to perform during certification.
///
/// The paper's proofs assume the *strong* `Ψ_lca` of its Table 1: every
/// LCA event is visible to every event that is new on either branch. Real
/// Git-like stores violate that on asymmetric repeated merges (see
/// [`peepul_core::store_props::psi_lca`]), and this harness found that the
/// space-optimized data types — whose states discard all but the greatest
/// live timestamp per element — genuinely *cannot* merge correctly outside
/// that envelope: the correct answer (a smaller, still-live add) may
/// survive in none of the three merge inputs.
///
/// Data types that keep full live information (counters, G-set, the
/// unoptimized OR-set, the queue, the log, LWW, compositions thereof) are
/// certified under [`MergePolicy::General`]; the space-optimized
/// OR-set-space, OR-set-spacetime and enable-wins-flag-space are certified
/// under [`MergePolicy::PaperEnvelope`], exactly mirroring the assumption
/// under which the paper's F* proofs hold.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum MergePolicy {
    /// Perform (and certify) every merge the schedule requests.
    #[default]
    General,
    /// Skip merges whose inputs violate the paper's strong `Ψ_lca`; the
    /// execution stays inside the store model the paper verifies against.
    PaperEnvelope,
}

/// A certification failure: which step broke which obligation.
#[derive(Clone, Debug)]
pub enum CertificationError {
    /// A proof obligation was falsified.
    Obligation {
        /// Index of the failing step within the executed schedule.
        step_index: usize,
        /// Rendering of the failing step.
        step: String,
        /// The falsified obligation with its counterexample.
        error: ObligationError,
    },
    /// The schedule was ill-formed for the store (unknown branch, …).
    Store(StoreError),
    /// The independently re-computed checker states diverged from the
    /// store's — a harness bug, never a data type bug.
    HarnessMismatch(String),
}

impl fmt::Display for CertificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificationError::Obligation {
                step_index,
                step,
                error,
            } => write!(f, "step {step_index} [{step}]: {error}"),
            CertificationError::Store(e) => write!(f, "store rejected schedule: {e}"),
            CertificationError::HarnessMismatch(m) => write!(f, "harness mismatch: {m}"),
        }
    }
}

impl Error for CertificationError {}

impl From<StoreError> for CertificationError {
    fn from(e: StoreError) -> Self {
        CertificationError::Store(e)
    }
}

/// Stateful runner over one execution.
pub struct Runner<M: Certified>
where
    M::Op: PartialEq,
{
    lts: StoreLts<M>,
    report: ObligationReport,
    steps_run: usize,
    policy: MergePolicy,
    skipped_merges: usize,
    /// Query probes checked (`Φ_spec`) against the post-state of every
    /// `DO` and `MERGE` — the checkers' side of the query/update split:
    /// queries left the op alphabet, so the harness instead asserts every
    /// probe at every reachable state.
    probes: Vec<M::Query>,
}

fn branch_name(i: usize) -> String {
    format!("b{i}")
}

impl<M: Certified> Runner<M>
where
    M::Op: PartialEq,
{
    /// A fresh runner: one root branch `b0` in the initial state, allowing
    /// every merge ([`MergePolicy::General`]).
    pub fn new() -> Self {
        Runner::with_policy(MergePolicy::General)
    }

    /// A fresh runner with an explicit merge policy.
    pub fn with_policy(policy: MergePolicy) -> Self {
        Runner {
            lts: StoreLts::new(branch_name(0)),
            report: ObligationReport::default(),
            steps_run: 0,
            policy,
            skipped_merges: 0,
            probes: Vec::new(),
        }
    }

    /// Sets the query probe set: after every `DO` and `MERGE`, each probe
    /// is answered by the concrete post-state and checked against the
    /// specification (`Φ_spec`).
    #[must_use]
    pub fn with_queries(mut self, probes: Vec<M::Query>) -> Self {
        self.probes = probes;
        self
    }

    /// Number of merges skipped because their inputs fell outside the
    /// paper's strong-`Ψ_lca` envelope (always 0 under
    /// [`MergePolicy::General`]).
    pub fn skipped_merges(&self) -> usize {
        self.skipped_merges
    }

    /// Number of branches currently alive.
    pub fn branch_count(&self) -> usize {
        self.lts.branch_count()
    }

    /// The obligation tally so far.
    pub fn report(&self) -> ObligationReport {
        self.report
    }

    /// Number of steps executed so far.
    pub fn steps_run(&self) -> usize {
        self.steps_run
    }

    /// The per-branch final snapshots (for data-type specific post-hoc
    /// checks such as the queue axioms).
    pub fn snapshots(&self) -> Vec<(String, Snapshot<M>)> {
        self.lts
            .snapshots()
            .map(|(n, s)| (n.to_owned(), s))
            .collect()
    }

    /// Checks the query probes — and the `Φ_codec` round-trip — against
    /// every branch's **current** state, in particular the initial
    /// `(σ0, I0)`, which no post-`DO`/`MERGE` probe ever reaches (a query
    /// that lies only on the initial state would otherwise certify
    /// cleanly). [`Runner::run_schedule`] and the bounded checker call
    /// this before the first transition.
    ///
    /// # Errors
    ///
    /// The first falsified probe as a `Φ_spec` violation, or a broken
    /// codec round-trip as `Φ_codec`.
    pub fn check_current_queries(&mut self) -> Result<(), CertificationError> {
        let snapshots: Vec<Snapshot<M>> = self.lts.snapshots().map(|(_, s)| s).collect();
        for snap in &snapshots {
            check_queries::<M>(
                &snap.abstract_state,
                &snap.concrete,
                &self.probes,
                &mut self.report,
            )
            .and_then(|()| check_codec::<M>(&snap.concrete, &mut self.report))
            .map_err(|error| CertificationError::Obligation {
                step_index: self.steps_run,
                step: "initial/current state".to_owned(),
                error,
            })?;
        }
        Ok(())
    }

    /// Executes one step, checking every obligation it triggers.
    ///
    /// # Errors
    ///
    /// The first [`CertificationError`] encountered; the runner should be
    /// discarded afterwards.
    pub fn apply_step(&mut self, step: &Step<M::Op>) -> Result<(), CertificationError> {
        let index = self.steps_run;
        let describe = |s: &Step<M::Op>| format!("{s}");
        match step {
            Step::CreateBranch { from } => {
                let new = branch_name(self.lts.branch_count());
                self.lts.create_branch(new, &branch_name(*from))?;
            }
            Step::Do { branch, op } => {
                let outcome = self.lts.do_op(&branch_name(*branch), op)?;
                let (abs_next, conc_next) = check_do::<M>(
                    &outcome.pre.abstract_state,
                    &outcome.pre.concrete,
                    op,
                    outcome.timestamp,
                    &mut self.report,
                )
                .map_err(|error| CertificationError::Obligation {
                    step_index: index,
                    step: describe(step),
                    error,
                })?;
                // The checker recomputed the transition from the same pure
                // inputs; a mismatch means the harness (not the data type)
                // is broken.
                if abs_next != *outcome.post.abstract_state || conc_next != *outcome.post.concrete {
                    return Err(CertificationError::HarnessMismatch(format!(
                        "DO at step {index} disagrees with store transition"
                    )));
                }
                check_queries::<M>(
                    &outcome.post.abstract_state,
                    &outcome.post.concrete,
                    &self.probes,
                    &mut self.report,
                )
                .and_then(|()| check_codec::<M>(&outcome.post.concrete, &mut self.report))
                .map_err(|error| CertificationError::Obligation {
                    step_index: index,
                    step: describe(step),
                    error,
                })?;
            }
            Step::Merge { into, from } => {
                if self.policy == MergePolicy::PaperEnvelope {
                    let ia = self.lts.snapshot(&branch_name(*into))?.abstract_state;
                    let ib = self.lts.snapshot(&branch_name(*from))?.abstract_state;
                    let il = ia.lca(&ib);
                    if psi_lca_paper(&il, &ia, &ib).is_err() {
                        // Outside the store model the paper verifies
                        // against: record and skip.
                        self.skipped_merges += 1;
                        self.steps_run += 1;
                        return Ok(());
                    }
                }
                let outcome = self.lts.merge(&branch_name(*into), &branch_name(*from))?;
                let (abs_next, conc_next) = check_merge::<M>(
                    &outcome.pre_into.abstract_state,
                    &outcome.pre_into.concrete,
                    &outcome.pre_from.abstract_state,
                    &outcome.pre_from.concrete,
                    &outcome.lca.concrete,
                    &mut self.report,
                )
                .map_err(|error| CertificationError::Obligation {
                    step_index: index,
                    step: describe(step),
                    error,
                })?;
                if abs_next != *outcome.post.abstract_state || conc_next != *outcome.post.concrete {
                    return Err(CertificationError::HarnessMismatch(format!(
                        "MERGE at step {index} disagrees with store transition"
                    )));
                }
                check_queries::<M>(
                    &outcome.post.abstract_state,
                    &outcome.post.concrete,
                    &self.probes,
                    &mut self.report,
                )
                .and_then(|()| check_codec::<M>(&outcome.post.concrete, &mut self.report))
                .map_err(|error| CertificationError::Obligation {
                    step_index: index,
                    step: describe(step),
                    error,
                })?;
            }
        }
        self.steps_run += 1;

        // Φ_con: branches that have observed the same events must be
        // observationally equivalent (Definition 3.5).
        let snapshots: Vec<Snapshot<M>> = self.lts.snapshots().map(|(_, s)| s).collect();
        for (i, a) in snapshots.iter().enumerate() {
            for b in snapshots.iter().skip(i + 1) {
                check_con::<M>(
                    &a.abstract_state,
                    &a.concrete,
                    &b.abstract_state,
                    &b.concrete,
                    &mut self.report,
                )
                .map_err(|error| CertificationError::Obligation {
                    step_index: index,
                    step: describe(step),
                    error,
                })?;
            }
        }
        Ok(())
    }

    /// Executes a whole schedule.
    ///
    /// # Errors
    ///
    /// The first [`CertificationError`] encountered.
    pub fn run_schedule(&mut self, schedule: &Schedule<M::Op>) -> Result<(), CertificationError> {
        // Probe σ0 (and any state a prior schedule left behind) — the
        // per-step probes only cover post-DO/MERGE states.
        self.check_current_queries()?;
        for step in &schedule.steps {
            self.apply_step(step)?;
        }
        Ok(())
    }
}

impl<M: Certified> Default for Runner<M>
where
    M::Op: PartialEq,
{
    fn default() -> Self {
        Runner::new()
    }
}

impl<M: Certified> Clone for Runner<M>
where
    M::Op: PartialEq,
{
    fn clone(&self) -> Self {
        Runner {
            lts: self.lts.clone(),
            report: self.report,
            steps_run: self.steps_run,
            policy: self.policy,
            skipped_merges: self.skipped_merges,
            probes: self.probes.clone(),
        }
    }
}

impl<M: Certified> fmt::Debug for Runner<M>
where
    M::Op: PartialEq,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Runner({} steps, {} branches, {} obligations)",
            self.steps_run,
            self.lts.branch_count(),
            self.report.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::{AbstractOf, Mrdt, SimulationRelation, Specification, Timestamp};
    use peepul_types::or_set_space::{OrSetOp, OrSetQuery, OrSetSpace};

    #[test]
    fn or_set_space_schedule_certifies() {
        let schedule: Schedule<OrSetOp<u32>> = [
            Step::Do {
                branch: 0,
                op: OrSetOp::Add(1),
            },
            Step::CreateBranch { from: 0 },
            Step::Do {
                branch: 0,
                op: OrSetOp::Add(1), // refresh
            },
            Step::Do {
                branch: 1,
                op: OrSetOp::Remove(1),
            },
            Step::Merge { into: 0, from: 1 },
            Step::Merge { into: 1, from: 0 },
        ]
        .into_iter()
        .collect();
        let mut runner: Runner<OrSetSpace<u32>> =
            Runner::new().with_queries(vec![OrSetQuery::Lookup(1), OrSetQuery::Read]);
        runner.run_schedule(&schedule).unwrap();
        let report = runner.report();
        assert_eq!(report.phi_do, 3);
        assert_eq!(report.phi_merge, 2);
        // Probes fire on the initial state and after every DO and MERGE:
        // 2 probes × (1 initial + 5 transitions), on top of the per-update
        // Φ_spec checks.
        assert_eq!(report.phi_spec, 3 + 2 * 6);
        assert!(report.phi_con >= 1); // after the second merge both branches agree
    }

    #[test]
    fn unknown_branch_is_a_store_error() {
        let mut runner: Runner<OrSetSpace<u32>> = Runner::new();
        let err = runner
            .apply_step(&Step::Do {
                branch: 5,
                op: OrSetOp::Add(1),
            })
            .unwrap_err();
        assert!(matches!(err, CertificationError::Store(_)));
    }

    /// A deliberately broken data type: its merge keeps only branch `a`,
    /// losing `b`'s additions. The runner must localise the failure to
    /// `Φ_merge` at the merge step.
    #[derive(Clone, PartialEq, Eq, Debug, Default)]
    struct LossySet(std::collections::BTreeSet<u32>);

    impl peepul_core::Wire for LossySet {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
        fn decode(input: &mut &[u8]) -> Option<Self> {
            Some(LossySet(peepul_core::Wire::decode(input)?))
        }
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Add(u32);

    impl Mrdt for LossySet {
        type Op = Add;
        type Value = ();
        type Query = ();
        type Output = usize;
        fn initial() -> Self {
            LossySet::default()
        }
        fn apply(&self, op: &Add, _t: Timestamp) -> (Self, ()) {
            let mut next = self.clone();
            next.0.insert(op.0);
            (next, ())
        }
        fn query(&self, _q: &()) -> usize {
            self.0.len()
        }
        fn merge(_lca: &Self, a: &Self, _b: &Self) -> Self {
            a.clone() // bug: drops b's elements
        }
    }

    struct LossySpec;
    impl Specification<LossySet> for LossySpec {
        fn spec(_op: &Add, _state: &AbstractOf<LossySet>) {}
        fn query(_q: &(), state: &AbstractOf<LossySet>) -> usize {
            state
                .events()
                .map(|e| e.op().0)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        }
    }

    struct LossySim;
    impl SimulationRelation<LossySet> for LossySim {
        fn holds(abs: &AbstractOf<LossySet>, conc: &LossySet) -> bool {
            let added: std::collections::BTreeSet<u32> = abs.events().map(|e| e.op().0).collect();
            conc.0 == added
        }
    }

    impl Certified for LossySet {
        type Spec = LossySpec;
        type Sim = LossySim;
    }

    /// A data type whose state transitions are correct but whose query
    /// implementation lies (off by one). Only the probe checks can catch
    /// this — no update return value ever exposes it.
    #[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
    struct LyingCounter(u64);

    impl peepul_core::Wire for LyingCounter {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
        fn decode(input: &mut &[u8]) -> Option<Self> {
            Some(LyingCounter(peepul_core::Wire::decode(input)?))
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Bump;

    impl Mrdt for LyingCounter {
        type Op = Bump;
        type Value = ();
        type Query = ();
        type Output = u64;
        fn initial() -> Self {
            LyingCounter(0)
        }
        fn apply(&self, _op: &Bump, _t: Timestamp) -> (Self, ()) {
            (LyingCounter(self.0 + 1), ())
        }
        fn query(&self, _q: &()) -> u64 {
            self.0 + 1 // bug: off-by-one observation
        }
        fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
            LyingCounter(a.0 + b.0 - lca.0)
        }
    }

    struct LyingSpec;
    impl Specification<LyingCounter> for LyingSpec {
        fn spec(_op: &Bump, _state: &AbstractOf<LyingCounter>) {}
        fn query(_q: &(), state: &AbstractOf<LyingCounter>) -> u64 {
            state.events().count() as u64
        }
    }

    struct LyingSim;
    impl SimulationRelation<LyingCounter> for LyingSim {
        fn holds(abs: &AbstractOf<LyingCounter>, conc: &LyingCounter) -> bool {
            conc.0 == abs.len() as u64
        }
    }

    impl Certified for LyingCounter {
        type Spec = LyingSpec;
        type Sim = LyingSim;
    }

    #[test]
    fn lying_query_is_caught_by_probes_only() {
        let schedule: Schedule<Bump> = [Step::Do {
            branch: 0,
            op: Bump,
        }]
        .into_iter()
        .collect();
        // Without probes the lie goes unnoticed…
        let mut blind: Runner<LyingCounter> = Runner::new();
        blind.run_schedule(&schedule).unwrap();
        // …with probes it is a Φ_spec violation at the DO step.
        let mut probed: Runner<LyingCounter> = Runner::new().with_queries(vec![()]);
        let err = probed.run_schedule(&schedule).unwrap_err();
        match err {
            CertificationError::Obligation { error, .. } => {
                assert_eq!(error.obligation(), peepul_core::Obligation::PhiSpec);
            }
            other => panic!("expected obligation failure, got {other}"),
        }
    }

    /// A query that lies **only on the initial state** — exactly the gap
    /// the pre-transition probe closes: every post-DO/MERGE state answers
    /// correctly.
    #[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
    struct InitLiar(u64);

    impl peepul_core::Wire for InitLiar {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
        fn decode(input: &mut &[u8]) -> Option<Self> {
            Some(InitLiar(peepul_core::Wire::decode(input)?))
        }
    }

    impl Mrdt for InitLiar {
        type Op = Bump;
        type Value = ();
        type Query = ();
        type Output = u64;
        fn initial() -> Self {
            InitLiar(0)
        }
        fn apply(&self, _op: &Bump, _t: Timestamp) -> (Self, ()) {
            (InitLiar(self.0 + 1), ())
        }
        fn query(&self, _q: &()) -> u64 {
            if self.0 == 0 {
                99 // bug: wrong answer on σ0 only
            } else {
                self.0
            }
        }
        fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
            InitLiar(a.0 + b.0 - lca.0)
        }
    }

    struct InitLiarSpec;
    impl Specification<InitLiar> for InitLiarSpec {
        fn spec(_op: &Bump, _state: &AbstractOf<InitLiar>) {}
        fn query(_q: &(), state: &AbstractOf<InitLiar>) -> u64 {
            state.events().count() as u64
        }
    }

    struct InitLiarSim;
    impl SimulationRelation<InitLiar> for InitLiarSim {
        fn holds(abs: &AbstractOf<InitLiar>, conc: &InitLiar) -> bool {
            conc.0 == abs.len() as u64
        }
    }

    impl Certified for InitLiar {
        type Spec = InitLiarSpec;
        type Sim = InitLiarSim;
    }

    #[test]
    fn initial_state_query_lie_is_caught_before_any_step() {
        let schedule: Schedule<Bump> = [Step::Do {
            branch: 0,
            op: Bump,
        }]
        .into_iter()
        .collect();
        let mut runner: Runner<InitLiar> = Runner::new().with_queries(vec![()]);
        let err = runner.run_schedule(&schedule).unwrap_err();
        match err {
            CertificationError::Obligation { step, error, .. } => {
                assert_eq!(error.obligation(), peepul_core::Obligation::PhiSpec);
                assert!(step.contains("initial"), "caught at σ0: {step}");
            }
            other => panic!("expected obligation failure, got {other}"),
        }
    }

    #[test]
    fn lossy_merge_is_caught_at_the_merge_step() {
        let schedule: Schedule<Add> = [
            Step::CreateBranch { from: 0 },
            Step::Do {
                branch: 0,
                op: Add(1),
            },
            Step::Do {
                branch: 1,
                op: Add(2),
            },
            Step::Merge { into: 0, from: 1 },
        ]
        .into_iter()
        .collect();
        let mut runner: Runner<LossySet> = Runner::new();
        let err = runner.run_schedule(&schedule).unwrap_err();
        match err {
            CertificationError::Obligation {
                step_index, error, ..
            } => {
                assert_eq!(step_index, 3);
                assert_eq!(error.obligation(), peepul_core::Obligation::PhiMerge);
            }
            other => panic!("expected obligation failure, got {other}"),
        }
    }
}

//! Seeded random schedule generation for the randomized certification
//! pass.

use crate::schedule::{Schedule, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the randomized pass.
#[derive(Clone, Debug)]
pub struct RandomConfig {
    /// Steps per generated schedule.
    pub steps: usize,
    /// Maximum number of branches (root included).
    pub max_branches: usize,
    /// Probability that a step creates a branch (while under the budget).
    pub create_probability: f64,
    /// Probability that a step merges two branches.
    pub merge_probability: f64,
    /// RNG seed — identical seeds generate identical schedules, so every
    /// reported counterexample is replayable.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            steps: 200,
            max_branches: 4,
            create_probability: 0.05,
            merge_probability: 0.15,
            seed: 0xBADC0FFE,
        }
    }
}

/// Generates well-formed random schedules; data-type operations are drawn
/// from a caller-supplied closure.
#[derive(Debug)]
pub struct ScheduleGenerator {
    config: RandomConfig,
    rng: StdRng,
}

impl ScheduleGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: RandomConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        ScheduleGenerator { config, rng }
    }

    /// Generates one schedule, drawing operations from `op_of(rng)`.
    pub fn generate<Op>(&mut self, mut op_of: impl FnMut(&mut StdRng) -> Op) -> Schedule<Op> {
        let mut steps = Vec::with_capacity(self.config.steps);
        let mut branches = 1usize;
        for _ in 0..self.config.steps {
            let roll: f64 = self.rng.gen();
            if branches < self.config.max_branches && roll < self.config.create_probability {
                let from = self.rng.gen_range(0..branches);
                steps.push(Step::CreateBranch { from });
                branches += 1;
            } else if branches >= 2
                && roll < self.config.create_probability + self.config.merge_probability
            {
                let into = self.rng.gen_range(0..branches);
                let mut from = self.rng.gen_range(0..branches - 1);
                if from >= into {
                    from += 1; // uniform over branches ≠ into
                }
                steps.push(Step::Merge { into, from });
            } else {
                let branch = self.rng.gen_range(0..branches);
                steps.push(Step::Do {
                    branch,
                    op: op_of(&mut self.rng),
                });
            }
        }
        Schedule { steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_schedules_are_well_formed() {
        let mut gen = ScheduleGenerator::new(RandomConfig {
            steps: 500,
            max_branches: 5,
            ..RandomConfig::default()
        });
        for _ in 0..10 {
            let s = gen.generate(|rng| rng.gen_range(0..10u32));
            assert_eq!(s.len(), 500);
            assert!(s.is_well_formed());
            assert!(s.branch_count() <= 5);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || {
            ScheduleGenerator::new(RandomConfig {
                steps: 100,
                seed: 42,
                ..RandomConfig::default()
            })
            .generate(|rng| rng.gen_range(0..10u32))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn merges_and_creates_both_occur() {
        let mut gen = ScheduleGenerator::new(RandomConfig {
            steps: 1000,
            max_branches: 4,
            create_probability: 0.1,
            merge_probability: 0.2,
            seed: 7,
        });
        let s = gen.generate(|rng| rng.gen_range(0..3u32));
        let merges = s
            .steps
            .iter()
            .filter(|x| matches!(x, Step::Merge { .. }))
            .count();
        let creates = s
            .steps
            .iter()
            .filter(|x| matches!(x, Step::CreateBranch { .. }))
            .count();
        assert!(merges > 50, "merges = {merges}");
        assert_eq!(creates, 3);
        // Self-merges are never generated.
        assert!(s.steps.iter().all(|x| match x {
            Step::Merge { into, from } => into != from,
            _ => true,
        }));
    }
}

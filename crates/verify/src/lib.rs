//! Executable certification harness for MRDTs.
//!
//! The F* Peepul proves the Table 2 obligations (`Φ_do`, `Φ_merge`,
//! `Φ_spec`, `Φ_con`) once and for all with an SMT solver. This crate
//! *checks* the identical predicates over store executions, two ways:
//!
//! * [`bounded`] — **bounded-exhaustive**: every execution of the store
//!   LTS up to a configurable number of steps, over a small operation
//!   alphabet and branch budget (the decidable fragment where RDT bugs
//!   live: a couple of branches, a handful of conflicting operations);
//! * [`generator`] + [`runner`] — **randomized**: long seeded executions
//!   with many branches, operations and merges.
//!
//! Both drive the paper's store semantics (Fig. 3, implemented as
//! [`peepul_store::StoreLts`]) and check every obligation at every
//! transition, so a falsified obligation produces a concrete
//! counterexample trace. The [`suite`] module packages a certification run
//! for each data type of `peepul-types`; the `table3` benchmark binary
//! prints the resulting effort/cost table, this workspace's analogue of
//! the paper's Table 3.
//!
//! # Example
//!
//! ```
//! use peepul_types::counter::{Counter, CounterOp, CounterQuery};
//! use peepul_verify::bounded::{BoundedChecker, BoundedConfig};
//!
//! // Exhaustively check every ≤4-step execution of the counter over the
//! // update alphabet {Increment} with up to 2 branches, probing the Value
//! // query against every reached state.
//! let config = BoundedConfig {
//!     max_steps: 4,
//!     max_branches: 2,
//!     alphabet: vec![CounterOp::Increment],
//!     queries: vec![CounterQuery::Value],
//! };
//! let stats = BoundedChecker::<Counter>::new(config).run().expect("counter is correct");
//! assert!(stats.executions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounded;
pub mod codec_mutants;
pub mod generator;
pub mod proptest_support;
pub mod ralin;
pub mod runner;
pub mod schedule;
pub mod suite;

pub use bounded::{BoundedChecker, BoundedConfig, BoundedStats};
pub use codec_mutants::{run_codec_mutants, CodecMutantOutcome};
pub use generator::{RandomConfig, ScheduleGenerator};
pub use ralin::{
    check_fleet, check_fleet_on, check_ra_lin, run_replication_mutants, FleetConfig,
    HistoryRecorder, MutantOutcome, RaLinOptions, RaLinStats, WitnessHistory,
};
pub use runner::{CertificationError, MergePolicy, Runner};
pub use schedule::{Schedule, Step};
pub use suite::{
    certify_all, certify_replication, CertificationSummary, RaLinSuiteConfig, RaLinSummary,
    SuiteConfig,
};

//! The `Φ_ra` mutant kill-gate: each deliberately broken replication
//! layer must be rejected by the replication-aware linearizability
//! checker — and *only* by it: every mutated run still converges, so the
//! conventional convergence check alone would have shipped the bug.
//!
//! The four mutants (see `peepul_net::ReplicationMutation`) each break a
//! different axiom of the witness checker: the Lamport receive rule,
//! causal pack delivery, the divergence pre-check on pull integration,
//! and the faithfulness of recorded visibility edges. A surviving mutant
//! hard-fails CI.

use peepul_net::ReplicationMutation;
use peepul_verify::run_replication_mutants;

#[test]
fn every_replication_mutant_is_killed_by_ra_lin_alone() {
    let outcomes = run_replication_mutants();
    assert_eq!(outcomes.len(), 4);
    let expected = [
        ReplicationMutation::BrokenReceiveRule,
        ReplicationMutation::ReorderedPackIngest,
        ReplicationMutation::SkipDivergenceCheck,
        ReplicationMutation::DropVisibilityEdge,
    ];
    for (outcome, expected) in outcomes.iter().zip(expected) {
        assert_eq!(outcome.mutation, expected);
        assert!(
            outcome.baseline_ok,
            "{}: the fault-free baseline must certify",
            outcome.mutation
        );
        assert!(
            outcome.converged,
            "{}: the mutated run must still converge — the point is that \
             convergence checking cannot see this fault",
            outcome.mutation
        );
        assert!(
            outcome.killed,
            "{} survived Φ_ra: {}",
            outcome.mutation, outcome.detail
        );
        assert!(outcome.caught());
    }
}

/// Each mutant's counterexample names the axiom shaped to catch it, so a
/// kill is attributable — not an incidental failure elsewhere.
#[test]
fn each_mutant_is_killed_by_its_own_axiom() {
    for outcome in run_replication_mutants() {
        let needle = match outcome.mutation {
            ReplicationMutation::None => unreachable!("the kill-gate never runs None"),
            ReplicationMutation::BrokenReceiveRule => "inversion",
            ReplicationMutation::ReorderedPackIngest => "causal delivery",
            ReplicationMutation::SkipDivergenceCheck => "monotonic visibility",
            ReplicationMutation::DropVisibilityEdge => "session guarantee",
        };
        assert!(
            outcome.detail.contains(needle),
            "{} was killed, but not by its own axiom: {}",
            outcome.mutation,
            outcome.detail
        );
    }
}

//! Mutation testing for the certification harness: a gallery of
//! classically-broken RDT implementations, each of which the harness must
//! reject — and reject for the *right* obligation.
//!
//! A verification methodology earns its keep by what it refuses. Each
//! mutant below reproduces a real bug class from the RDT literature
//! (state-based merge that forgets the ancestor, remove-wins instead of
//! add-wins, lost timestamp refresh, non-commutative tie-breaking,
//! tombstone resurrection); the tests assert that bounded-exhaustive
//! search with a tiny alphabet finds every one, and names the falsified
//! obligation.

use peepul_core::{
    AbstractOf, Certified, Delta, Mrdt, Obligation, SimulationRelation, Specification, Timestamp,
    Wire,
};
use peepul_types::or_set::{OrSetOp, OrSetOutput, OrSetQuery};
use peepul_verify::{BoundedChecker, BoundedConfig, CertificationError};
use std::collections::BTreeMap;

/// Runs the exhaustive checker and returns the falsified obligation.
fn first_violation<M: Certified>(
    max_steps: usize,
    alphabet: Vec<M::Op>,
    queries: Vec<M::Query>,
) -> Option<(Obligation, String)>
where
    M::Op: PartialEq,
{
    let checker = BoundedChecker::<M>::new(BoundedConfig {
        max_steps,
        max_branches: 2,
        alphabet,
        queries,
    });
    match checker.run() {
        Ok(_) => None,
        Err(CertificationError::Obligation { error, step, .. }) => Some((error.obligation(), step)),
        Err(other) => panic!("expected an obligation failure, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Mutant 1: a grow-only set whose merge forgets the ancestor's elements
// unless a branch re-touched them (classic "two-way merge" bug).
// ---------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct TwoWaySet(std::collections::BTreeSet<u8>);

impl Wire for TwoWaySet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(TwoWaySet(Wire::decode(input)?))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Put(u8);

impl Mrdt for TwoWaySet {
    type Op = Put;
    type Value = ();
    type Query = ();
    type Output = usize;
    fn initial() -> Self {
        TwoWaySet::default()
    }
    fn apply(&self, op: &Put, _t: Timestamp) -> (Self, ()) {
        let mut s = self.clone();
        s.0.insert(op.0);
        (s, ())
    }
    fn query(&self, _q: &()) -> usize {
        self.0.len()
    }
    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        // BUG: symmetric difference union instead of union — drops
        // ancestor elements that neither branch re-added.
        TwoWaySet(
            a.0.symmetric_difference(&b.0)
                .copied()
                .chain(
                    lca.0
                        .intersection(&a.0)
                        .copied()
                        .filter(|x| !b.0.contains(x)),
                )
                .collect(),
        )
    }
}

struct TwoWaySpec;
impl Specification<TwoWaySet> for TwoWaySpec {
    fn spec(_op: &Put, _s: &AbstractOf<TwoWaySet>) {}
    fn query(_q: &(), abs: &AbstractOf<TwoWaySet>) -> usize {
        abs.events()
            .map(|e| e.op().0)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }
}
struct TwoWaySim;
impl SimulationRelation<TwoWaySet> for TwoWaySim {
    fn holds(abs: &AbstractOf<TwoWaySet>, conc: &TwoWaySet) -> bool {
        let want: std::collections::BTreeSet<u8> = abs.events().map(|e| e.op().0).collect();
        conc.0 == want
    }
}
impl Certified for TwoWaySet {
    type Spec = TwoWaySpec;
    type Sim = TwoWaySim;
}

#[test]
fn two_way_merge_bug_is_caught_as_phi_merge() {
    let (obligation, step) = first_violation::<TwoWaySet>(4, vec![Put(1), Put(2)], vec![()])
        .expect("mutant must be caught");
    assert_eq!(obligation, Obligation::PhiMerge);
    assert!(
        step.contains("MERGE"),
        "failure localised to a merge: {step}"
    );
}

// ---------------------------------------------------------------------
// Mutant 2: an "OR-set" where remove wins over a concurrent add — the
// conflict-resolution policy inverted relative to the specification.
// ---------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct RemoveWinsSet {
    pairs: Vec<(u8, Timestamp)>,
}

impl Wire for RemoveWinsSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pairs.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(RemoveWinsSet {
            pairs: Wire::decode(input)?,
        })
    }
}

impl Mrdt for RemoveWinsSet {
    type Op = OrSetOp<u8>;
    type Value = ();
    type Query = OrSetQuery<u8>;
    type Output = OrSetOutput<u8>;
    fn initial() -> Self {
        RemoveWinsSet::default()
    }
    fn apply(&self, op: &OrSetOp<u8>, t: Timestamp) -> (Self, ()) {
        match op {
            OrSetOp::Add(x) => {
                let mut s = self.clone();
                s.pairs.push((*x, t));
                (s, ())
            }
            OrSetOp::Remove(x) => (
                RemoveWinsSet {
                    pairs: self.pairs.iter().filter(|(y, _)| y != x).cloned().collect(),
                },
                (),
            ),
        }
    }
    fn query(&self, q: &OrSetQuery<u8>) -> OrSetOutput<u8> {
        match q {
            OrSetQuery::Lookup(x) => OrSetOutput::Present(self.pairs.iter().any(|(y, _)| y == x)),
            OrSetQuery::Read => {
                let mut v: Vec<u8> = self.pairs.iter().map(|(x, _)| *x).collect();
                v.sort();
                v.dedup();
                OrSetOutput::Elements(v)
            }
        }
    }
    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        // BUG: keep only pairs present in BOTH branches or in neither's
        // removal shadow — i.e. an element removed anywhere loses even
        // against a concurrent fresh add (remove-wins).
        let keep = |p: &(u8, Timestamp)| {
            (a.pairs.contains(p) && b.pairs.contains(p))
                || (!lca.pairs.iter().any(|(y, _)| *y == p.0)
                    && (a.pairs.contains(p) || b.pairs.contains(p))
                    && a.pairs
                        .iter()
                        .chain(b.pairs.iter())
                        .filter(|(y, _)| *y == p.0)
                        .count()
                        == a.pairs
                            .iter()
                            .chain(b.pairs.iter())
                            .filter(|q| *q == p)
                            .count()
                    && {
                        // fresh pair survives only if the element was never
                        // in the lca (so no remove could have targeted it)
                        true
                    })
        };
        let mut pairs: Vec<(u8, Timestamp)> = a
            .pairs
            .iter()
            .chain(b.pairs.iter())
            .filter(|p| keep(p))
            .cloned()
            .collect();
        pairs.sort_by_key(|(_, t)| *t);
        pairs.dedup();
        RemoveWinsSet { pairs }
    }
}

struct RwSpec;
impl Specification<RemoveWinsSet> for RwSpec {
    fn spec(_op: &OrSetOp<u8>, _abs: &AbstractOf<RemoveWinsSet>) {}
    fn query(q: &OrSetQuery<u8>, abs: &AbstractOf<RemoveWinsSet>) -> OrSetOutput<u8> {
        // The *add-wins* specification (the one the paper states).
        let live = |x: &u8| {
            abs.events().any(|e| {
                matches!(e.op(), OrSetOp::Add(y) if y == x)
                    && !abs.events().any(|r| {
                        matches!(r.op(), OrSetOp::Remove(y) if y == x) && abs.vis(e.id(), r.id())
                    })
            })
        };
        match q {
            OrSetQuery::Lookup(x) => OrSetOutput::Present(live(x)),
            OrSetQuery::Read => {
                let mut v: Vec<u8> = (0..=u8::MAX).filter(|x| live(x)).collect();
                v.dedup();
                OrSetOutput::Elements(v)
            }
        }
    }
}
struct RwSim;
impl SimulationRelation<RemoveWinsSet> for RwSim {
    fn holds(abs: &AbstractOf<RemoveWinsSet>, conc: &RemoveWinsSet) -> bool {
        // The add-wins relation: pairs are exactly the live adds.
        let live: std::collections::BTreeSet<(u8, Timestamp)> = abs
            .events()
            .filter_map(|e| match e.op() {
                OrSetOp::Add(x)
                    if !abs.events().any(|r| {
                        matches!(r.op(), OrSetOp::Remove(y) if y == x) && abs.vis(e.id(), r.id())
                    }) =>
                {
                    Some((*x, e.id()))
                }
                _ => None,
            })
            .collect();
        conc.pairs
            .iter()
            .cloned()
            .collect::<std::collections::BTreeSet<_>>()
            == live
    }
}
impl Certified for RemoveWinsSet {
    type Spec = RwSpec;
    type Sim = RwSim;
}

#[test]
fn remove_wins_policy_is_caught() {
    let (obligation, _) = first_violation::<RemoveWinsSet>(
        4,
        vec![OrSetOp::Add(1), OrSetOp::Remove(1)],
        vec![OrSetQuery::Lookup(1)],
    )
    .expect("mutant must be caught");
    // The inverted policy surfaces either at the merge (wrong state) or at
    // the next lookup (wrong answer); both are real catches.
    assert!(
        obligation == Obligation::PhiMerge || obligation == Obligation::PhiSpec,
        "caught as {obligation}"
    );
}

// ---------------------------------------------------------------------
// Mutant 3: an LWW register that breaks concurrent-write ties by branch
// role instead of timestamp — convergence (Φ_con) fails because the two
// merge directions disagree.
// ---------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Debug)]
struct BiasedRegister {
    value: u8,
    time: Timestamp,
}

impl Wire for BiasedRegister {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value.encode(out);
        self.time.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(BiasedRegister {
            value: Wire::decode(input)?,
            time: Wire::decode(input)?,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Write(u8);

impl Mrdt for BiasedRegister {
    type Op = Write;
    type Value = ();
    type Query = ();
    type Output = ();
    fn initial() -> Self {
        BiasedRegister {
            value: 0,
            time: Timestamp::MIN,
        }
    }
    fn apply(&self, op: &Write, t: Timestamp) -> (Self, ()) {
        (
            BiasedRegister {
                value: op.0,
                time: t,
            },
            (),
        )
    }
    fn query(&self, _q: &()) {}
    fn merge(_lca: &Self, a: &Self, b: &Self) -> Self {
        // BUG: "our side wins" — the receiving branch keeps its own write
        // on concurrent conflicts instead of comparing timestamps.
        if a.time == Timestamp::MIN {
            b.clone()
        } else {
            a.clone()
        }
    }
}

struct BiasedSpec;
impl Specification<BiasedRegister> for BiasedSpec {
    fn spec(_op: &Write, _s: &AbstractOf<BiasedRegister>) {}
    fn query(_q: &(), _s: &AbstractOf<BiasedRegister>) {}
}
struct BiasedSim;
impl SimulationRelation<BiasedRegister> for BiasedSim {
    fn holds(abs: &AbstractOf<BiasedRegister>, conc: &BiasedRegister) -> bool {
        // Intentionally weak relation (only membership of the written
        // value) so that preservation holds and the *convergence*
        // obligation is what must catch the bug.
        abs.is_empty() && conc.time == Timestamp::MIN
            || abs.events().any(|e| e.op().0 == conc.value)
    }
}
impl Certified for BiasedRegister {
    type Spec = BiasedSpec;
    type Sim = BiasedSim;
}

#[test]
fn non_commutative_tie_break_is_caught_as_phi_con() {
    let (obligation, _) = first_violation::<BiasedRegister>(5, vec![Write(1), Write(2)], vec![])
        .expect("mutant must be caught");
    assert_eq!(
        obligation,
        Obligation::PhiCon,
        "the two merge directions disagree while the abstract states are equal"
    );
}

// ---------------------------------------------------------------------
// Mutant 4: a counter whose read query undercounts by one (spec violation
// on a pure observation — no merge needed at all). Since the query/update
// split, only the per-state query probes can catch this class of bug.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct OffByOneCounter(u64);

impl Wire for OffByOneCounter {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(OffByOneCounter(Wire::decode(input)?))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Inc;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ReadQ;

impl Mrdt for OffByOneCounter {
    type Op = Inc;
    type Value = ();
    type Query = ReadQ;
    type Output = u64;
    fn initial() -> Self {
        OffByOneCounter(0)
    }
    fn apply(&self, _op: &Inc, _t: Timestamp) -> (Self, ()) {
        (OffByOneCounter(self.0 + 1), ())
    }
    fn query(&self, _q: &ReadQ) -> u64 {
        self.0.saturating_sub(1) // BUG
    }
    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        OffByOneCounter(a.0 + b.0 - lca.0)
    }
}

struct OboSpec;
impl Specification<OffByOneCounter> for OboSpec {
    fn spec(_op: &Inc, _abs: &AbstractOf<OffByOneCounter>) {}
    fn query(_q: &ReadQ, abs: &AbstractOf<OffByOneCounter>) -> u64 {
        abs.events().count() as u64
    }
}
struct OboSim;
impl SimulationRelation<OffByOneCounter> for OboSim {
    fn holds(abs: &AbstractOf<OffByOneCounter>, conc: &OffByOneCounter) -> bool {
        conc.0 == abs.events().count() as u64
    }
}
impl Certified for OffByOneCounter {
    type Spec = OboSpec;
    type Sim = OboSim;
}

#[test]
fn off_by_one_read_is_caught_as_phi_spec() {
    let (obligation, step) = first_violation::<OffByOneCounter>(2, vec![Inc], vec![ReadQ])
        .expect("mutant must be caught");
    assert_eq!(obligation, Obligation::PhiSpec);
    assert!(step.contains("DO"), "failure localised to the read: {step}");
}

// ---------------------------------------------------------------------
// Mutant 5: OR-set-space *without* the timestamp refresh on duplicate
// adds — the precise §2.1.2 bug the paper warns about ("this breaks the
// intent of the OR-set").
// ---------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct NoRefreshSet {
    pairs: BTreeMap<u8, Timestamp>,
}

impl Wire for NoRefreshSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pairs.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(NoRefreshSet {
            pairs: Wire::decode(input)?,
        })
    }
}

impl Mrdt for NoRefreshSet {
    type Op = OrSetOp<u8>;
    type Value = ();
    type Query = OrSetQuery<u8>;
    type Output = OrSetOutput<u8>;
    fn initial() -> Self {
        NoRefreshSet::default()
    }
    fn apply(&self, op: &OrSetOp<u8>, t: Timestamp) -> (Self, ()) {
        match op {
            OrSetOp::Add(x) => {
                let mut s = self.clone();
                // BUG: leave the old timestamp if present — the duplicate
                // add's effect is lost, so a concurrent remove that saw the
                // old pair deletes the "re-added" element.
                s.pairs.entry(*x).or_insert(t);
                (s, ())
            }
            OrSetOp::Remove(x) => {
                let mut s = self.clone();
                s.pairs.remove(x);
                (s, ())
            }
        }
    }
    fn query(&self, q: &OrSetQuery<u8>) -> OrSetOutput<u8> {
        match q {
            OrSetQuery::Lookup(x) => OrSetOutput::Present(self.pairs.contains_key(x)),
            OrSetQuery::Read => OrSetOutput::Elements(self.pairs.keys().copied().collect()),
        }
    }
    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        // The correct Fig. 2 merge — the bug is purely in `apply`.
        let mut out = BTreeMap::new();
        for (x, t) in &lca.pairs {
            if a.pairs.get(x) == Some(t) && b.pairs.get(x) == Some(t) {
                out.insert(*x, *t);
            }
        }
        let fresh = |side: &NoRefreshSet| {
            side.pairs
                .iter()
                .filter(|(x, t)| lca.pairs.get(*x) != Some(*t))
                .map(|(x, t)| (*x, *t))
                .collect::<BTreeMap<_, _>>()
        };
        let (fa, fb) = (fresh(a), fresh(b));
        for (x, ta) in &fa {
            let t = match fb.get(x) {
                Some(tb) => *ta.max(tb),
                None => *ta,
            };
            out.insert(*x, t);
        }
        for (x, tb) in &fb {
            if !fa.contains_key(x) {
                out.insert(*x, *tb);
            }
        }
        NoRefreshSet { pairs: out }
    }
}

struct NrSpec;
impl Specification<NoRefreshSet> for NrSpec {
    fn spec(_op: &OrSetOp<u8>, _abs: &AbstractOf<NoRefreshSet>) {}
    fn query(q: &OrSetQuery<u8>, abs: &AbstractOf<NoRefreshSet>) -> OrSetOutput<u8> {
        let live = |x: &u8| {
            abs.events().any(|e| {
                matches!(e.op(), OrSetOp::Add(y) if y == x)
                    && !abs.events().any(|r| {
                        matches!(r.op(), OrSetOp::Remove(y) if y == x) && abs.vis(e.id(), r.id())
                    })
            })
        };
        match q {
            OrSetQuery::Lookup(x) => OrSetOutput::Present(live(x)),
            OrSetQuery::Read => OrSetOutput::Elements((0..=u8::MAX).filter(|x| live(x)).collect()),
        }
    }
}
struct NrSim;
impl SimulationRelation<NoRefreshSet> for NrSim {
    fn holds(abs: &AbstractOf<NoRefreshSet>, conc: &NoRefreshSet) -> bool {
        // The honest relation (greatest live add per element).
        let mut greatest: BTreeMap<u8, Timestamp> = BTreeMap::new();
        for e in abs.events() {
            if let OrSetOp::Add(x) = e.op() {
                let dead = abs.events().any(|r| {
                    matches!(r.op(), OrSetOp::Remove(y) if y == x) && abs.vis(e.id(), r.id())
                });
                if !dead {
                    let slot = greatest.entry(*x).or_insert_with(|| e.id());
                    if e.id() > *slot {
                        *slot = e.id();
                    }
                }
            }
        }
        conc.pairs == greatest
    }
}
impl Certified for NoRefreshSet {
    type Spec = NrSpec;
    type Sim = NrSim;
}

#[test]
fn missing_timestamp_refresh_is_caught() {
    let (obligation, _) = first_violation::<NoRefreshSet>(
        3,
        vec![OrSetOp::Add(1), OrSetOp::Remove(1)],
        vec![OrSetQuery::Lookup(1)],
    )
    .expect("mutant must be caught");
    // The lost refresh shows up as a Φ_do failure (the duplicate add's
    // state no longer matches the relation) before any merge happens.
    assert_eq!(obligation, Obligation::PhiDo);
}

// ---------------------------------------------------------------------
// Mutant 6: a correct counter with a *drifted codec* — encode narrows to
// u32 while decode reads u64. No merge, query or simulation bug exists;
// only the Φ_codec standing obligation catches it. This is the bug class
// the single-codec unification makes fatal (it would corrupt storage,
// addressing and replication at once), which is why the harness checks
// the round-trip at every explored state.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct DriftedCodecCounter(u64);

impl Wire for DriftedCodecCounter {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0 as u32).encode(out); // BUG: 4 bytes out…
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(DriftedCodecCounter(Wire::decode(input)?)) // …8 bytes back
    }
}

impl Mrdt for DriftedCodecCounter {
    type Op = Inc;
    type Value = ();
    type Query = ReadQ;
    type Output = u64;
    fn initial() -> Self {
        DriftedCodecCounter(0)
    }
    fn apply(&self, _op: &Inc, _t: Timestamp) -> (Self, ()) {
        (DriftedCodecCounter(self.0 + 1), ())
    }
    fn query(&self, _q: &ReadQ) -> u64 {
        self.0
    }
    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        DriftedCodecCounter(a.0 + b.0 - lca.0)
    }
}

struct DriftSpec;
impl Specification<DriftedCodecCounter> for DriftSpec {
    fn spec(_op: &Inc, _abs: &AbstractOf<DriftedCodecCounter>) {}
    fn query(_q: &ReadQ, abs: &AbstractOf<DriftedCodecCounter>) -> u64 {
        abs.events().count() as u64
    }
}
struct DriftSim;
impl SimulationRelation<DriftedCodecCounter> for DriftSim {
    fn holds(abs: &AbstractOf<DriftedCodecCounter>, conc: &DriftedCodecCounter) -> bool {
        conc.0 == abs.events().count() as u64
    }
}
impl Certified for DriftedCodecCounter {
    type Spec = DriftSpec;
    type Sim = DriftSim;
}

#[test]
fn drifted_codec_is_caught_as_phi_codec() {
    let (obligation, step) = first_violation::<DriftedCodecCounter>(2, vec![Inc], vec![ReadQ])
        .expect("mutant must be caught");
    assert_eq!(obligation, Obligation::Codec);
    // σ0 already fails the round-trip, so the violation is localised to
    // the pre-transition probe.
    assert!(step.contains("initial"), "caught at σ0: {step}");
}

// ---------------------------------------------------------------------
// Mutant 7: a correct counter with a correct codec but a *drifted delta*:
// `diff` emits a well-formed, decodable edit script that resolves back to
// the parent instead of the child. Every other obligation passes — the
// full encoding round-trips, merges converge, queries match the spec —
// because the delta is only exercised by the storage/transfer layer. Only
// the Φ_codec delta-resolution law (`apply_delta(p, σ.diff(p)) ≅ σ`,
// re-encoding to `encode(σ)`) catches it; without that check this bug
// silently stores/ships deltas that resolve to the wrong state (caught
// later only by the content-address re-hash, far from the cause).
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct DriftedDeltaCounter(u64);

impl Wire for DriftedDeltaCounter {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(DriftedDeltaCounter(Wire::decode(input)?))
    }
}

impl Mrdt for DriftedDeltaCounter {
    type Op = Inc;
    type Value = ();
    type Query = ReadQ;
    type Output = u64;
    fn initial() -> Self {
        DriftedDeltaCounter(0)
    }
    fn apply(&self, _op: &Inc, _t: Timestamp) -> (Self, ()) {
        (DriftedDeltaCounter(self.0 + 1), ())
    }
    fn query(&self, _q: &ReadQ) -> u64 {
        self.0
    }
    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        DriftedDeltaCounter(a.0 + b.0 - lca.0)
    }
    fn diff(&self, parent: &Self) -> Delta {
        // BUG: claims "no change" regardless of the child — the delta
        // resolves to the parent's bytes, not this state's.
        Delta::splice(&parent.to_wire(), &parent.to_wire())
    }
}

struct DriftDeltaSpec;
impl Specification<DriftedDeltaCounter> for DriftDeltaSpec {
    fn spec(_op: &Inc, _abs: &AbstractOf<DriftedDeltaCounter>) {}
    fn query(_q: &ReadQ, abs: &AbstractOf<DriftedDeltaCounter>) -> u64 {
        abs.events().count() as u64
    }
}
struct DriftDeltaSim;
impl SimulationRelation<DriftedDeltaCounter> for DriftDeltaSim {
    fn holds(abs: &AbstractOf<DriftedDeltaCounter>, conc: &DriftedDeltaCounter) -> bool {
        conc.0 == abs.events().count() as u64
    }
}
impl Certified for DriftedDeltaCounter {
    type Spec = DriftDeltaSpec;
    type Sim = DriftDeltaSim;
}

#[test]
fn drifted_delta_is_caught_as_phi_codec() {
    let (obligation, step) = first_violation::<DriftedDeltaCounter>(2, vec![Inc], vec![ReadQ])
        .expect("mutant must be caught");
    assert_eq!(obligation, Obligation::Codec);
    // σ0 diffs against itself correctly (the identity delta *is* right
    // there), so the first DO is where resolution first drifts.
    assert!(step.contains("DO"), "caught at the first update: {step}");
}

//! Acceptance tests for `Φ_ra` over real fleets: healthy fault-injected
//! executions on both backends certify, the legacy simulated cluster
//! refuses witness recording, and — property-tested — *every* healthy
//! fleet shape is accepted.

use peepul_net::{Cluster, HistoryObserver, NetError};
use peepul_store::SegmentBackend;
use peepul_types::counter::{Counter, CounterOp, CounterQuery};
use peepul_types::queue::{Queue, QueueOp, QueueQuery};
use peepul_verify::ralin::HistoryRecorder;
use peepul_verify::{
    certify_replication, check_fleet, check_fleet_on, check_ra_lin, FleetConfig, RaLinOptions,
    RaLinSuiteConfig,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique scratch directory under the system temp dir, removed on drop.
struct Scratch {
    root: PathBuf,
}

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

impl Scratch {
    fn new(tag: &str) -> Self {
        let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        let root =
            std::env::temp_dir().join(format!("peepul-ralin-{}-{tag}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create scratch dir");
        Scratch { root }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// The headline acceptance run: a healthy 8-replica in-memory fleet with
/// seeded loss and a run-long partition certifies under Φ_ra.
#[test]
fn healthy_eight_replica_memory_fleet_certifies() {
    let config = FleetConfig {
        replicas: 8,
        ops_per_replica: 10,
        gossip_every: 3,
        loss_per_mille: 150,
        partition_one: true,
        ..FleetConfig::default()
    };
    let stats = check_fleet::<Counter>(&config, |_| CounterOp::Increment, &[CounterQuery::Value])
        .expect("healthy fleet must certify");
    assert_eq!(stats.events, 80);
    assert_eq!(stats.replicas, 8);
    assert_eq!(stats.observations, 8);
    assert!(stats.linearizations >= stats.events);
}

/// The same acceptance run over on-disk segment backends: witness
/// recording and Φ_ra are backend-agnostic.
#[test]
fn healthy_eight_replica_segment_fleet_certifies() {
    let scratch = Scratch::new("segment-fleet");
    let backends: Vec<SegmentBackend> = (0..8)
        .map(|i| SegmentBackend::open(scratch.root.join(format!("replica-{i}"))).expect("open"))
        .collect();
    let cluster: Cluster<Queue<u32>, SegmentBackend> =
        Cluster::replicated(backends).expect("cluster");
    let config = FleetConfig {
        replicas: 8,
        ops_per_replica: 8,
        gossip_every: 3,
        loss_per_mille: 100,
        partition_one: true,
        ..FleetConfig::default()
    };
    let stats = check_fleet_on(
        &cluster,
        &config,
        |s| {
            if s % 5 < 3 {
                QueueOp::Enqueue((s % 100) as u32)
            } else {
                QueueOp::Dequeue
            }
        },
        &[QueueQuery::Peek],
    )
    .expect("healthy segment fleet must certify");
    assert_eq!(stats.events, 64);
    assert_eq!(stats.replicas, 8);
}

/// Φ_ra under genuine thread interleaving: the packaged fleet runs are
/// lockstep (for exact seed replay), but the checker itself must accept
/// *any* healthy interleaving — here a fully threaded [`Cluster::run`]
/// with per-replica OS threads and racing ring gossip.
#[test]
fn threaded_fleet_with_racing_gossip_certifies() {
    let cluster: Cluster<Counter> = Cluster::new(6).expect("cluster");
    let recorder = Arc::new(HistoryRecorder::<Counter>::new());
    cluster
        .set_observer(recorder.clone())
        .expect("replicated cluster takes an observer");
    for i in 0..cluster.replicas() {
        cluster
            .faults(i)
            .expect("faults")
            .set_loss(120, 7 + i as u64);
    }
    cluster
        .run(10, 2, |_, _| CounterOp::Increment)
        .expect("threaded run");
    for i in 0..cluster.replicas() {
        let faults = cluster.faults(i).expect("faults");
        faults.set_loss(0, 0);
        faults.heal();
    }
    cluster.converge().expect("anti-entropy");
    for i in 0..cluster.replicas() {
        cluster.read(i, &CounterQuery::Value).expect("probe");
    }
    let stats = check_ra_lin(&recorder.snapshot(), &RaLinOptions::default())
        .expect("healthy threaded fleet must certify");
    assert_eq!(stats.events, 60);
    assert_eq!(stats.replicas, 6);
}

/// The legacy simulated cluster shares one store across all "replicas" —
/// there is no per-replica ingest path to witness, so RA-lin checking is
/// refused with a clear error instead of recording nonsense.
#[test]
fn simulated_cluster_refuses_witness_recording() {
    let cluster: Cluster<Counter> = Cluster::simulated(3).expect("cluster");
    let recorder: Arc<dyn HistoryObserver<Counter>> = Arc::new(HistoryRecorder::new());
    let err = cluster.set_observer(recorder).expect_err("must refuse");
    assert!(
        matches!(&err, NetError::Protocol(m) if m.contains("replicated cluster")),
        "{err}"
    );
    let err = cluster
        .set_mutation(peepul_net::ReplicationMutation::DropVisibilityEdge)
        .expect_err("must refuse");
    assert!(matches!(err, NetError::Protocol(_)), "{err}");
}

/// The packaged per-type RA-lin suites all certify at a quick shape.
#[test]
fn replication_suite_certifies_all_types() {
    let config = RaLinSuiteConfig {
        runs: 2,
        replicas: 4,
        ops_per_replica: 6,
        gossip_every: 2,
        loss_per_mille: 100,
        partition_one: true,
        ..RaLinSuiteConfig::default()
    };
    let summaries = certify_replication(&config);
    assert_eq!(summaries.len(), 6);
    for s in &summaries {
        assert!(s.passed(), "{}: {:?}", s.name, s.failure);
        assert!(s.stats.events > 0, "{}: no events recorded", s.name);
    }
    // Exactly one suite (OR-set-space, certified relative to the merge
    // envelope) runs in structural mode.
    assert_eq!(summaries.iter().filter(|s| s.structural).count(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Soundness of the checker on healthy executions: whatever the fleet
    /// shape, seed, loss rate or partition plan, a faithful replication
    /// layer is always accepted.
    #[test]
    fn healthy_fleets_are_always_accepted(
        replicas in 2usize..6,
        ops in 1usize..9,
        gossip in 1usize..4,
        seed in any::<u64>(),
        loss in 0u16..300,
        partition in any::<bool>(),
    ) {
        let config = FleetConfig {
            replicas,
            ops_per_replica: ops,
            gossip_every: gossip,
            seed,
            loss_per_mille: loss,
            partition_one: partition,
            ..FleetConfig::default()
        };
        let stats = check_fleet::<Counter>(
            &config,
            |_| CounterOp::Increment,
            &[CounterQuery::Value],
        ).unwrap_or_else(|e| panic!("healthy fleet rejected: {e}"));
        prop_assert_eq!(stats.events, (replicas * ops) as u64);
    }
}

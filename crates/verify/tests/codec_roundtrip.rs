//! Property test of the `Φ_codec` standing obligation over **all 14
//! types**: for randomly reached states, `decode(encode(σ))` is
//! observably equal to `σ` and re-encodes to the identical bytes.
//!
//! The certification runner already checks the same round-trip at every
//! state a bounded or randomized pass explores; this suite is the
//! shrinking, adversarially-seeded version — it drives each data type
//! through random divergence and a three-way merge, checking the codec at
//! *every* intermediate state, and minimises any failing operation
//! sequence. Because the canonical encoding is the storage format, the
//! wire format and the content-address preimage all at once, a failure
//! here means stores could not reopen and replicas could not verify — the
//! highest-stakes property in the workspace.

use peepul_core::{Mrdt, ReplicaId, Timestamp, Wire};
use peepul_types::avl::AvlMap;
use peepul_types::chat::{Chat, ChatOp};
use peepul_types::counter::{Counter, CounterOp};
use peepul_types::ew_flag::{EwFlag, EwFlagOp, EwFlagSpace};
use peepul_types::g_set::{GSet, GSetOp};
use peepul_types::log::{LogOp, MergeableLog};
use peepul_types::lww_register::{LwwOp, LwwRegister};
use peepul_types::map::{MapOp, MrdtMap};
use peepul_types::or_set::{OrSet, OrSetOp};
use peepul_types::or_set_space::OrSetSpace;
use peepul_types::or_set_spacetime::OrSetSpacetime;
use peepul_types::pn_counter::{PnCounter, PnCounterOp};
use peepul_types::queue::{Queue, QueueOp};
use proptest::prelude::*;

fn ts(tick: u64, r: u32) -> Timestamp {
    Timestamp::new(tick, ReplicaId::new(r))
}

/// Asserts the codec laws on one state: decodability, observational
/// round-trip, canonical (byte-identical) re-encode.
fn assert_roundtrip<M: Mrdt>(state: &M) {
    let bytes = state.to_wire();
    let decoded =
        M::from_wire(&bytes).unwrap_or_else(|| panic!("{state:?}: canonical bytes did not decode"));
    assert!(
        decoded.observably_equal(state),
        "decode(encode(σ)) ≠ σ: {decoded:?} vs {state:?}"
    );
    assert_eq!(decoded.to_wire(), bytes, "re-encode must be byte-identical");
}

/// Drives `ops` through a fork/apply/merge shape — half the operations on
/// each of two branches diverging from a common ancestor, then the
/// three-way merge — checking the codec at every state reached.
fn certify_codec<M: Mrdt>(ops: Vec<(bool, M::Op)>) {
    let mut lca = M::initial();
    assert_roundtrip(&lca);
    let mut tick = 0u64;
    // A short shared prefix so the LCA is not always σ0.
    for (_, op) in ops.iter().take(ops.len() / 4) {
        tick += 1;
        lca = lca.apply(op, ts(tick, 0)).0;
        assert_roundtrip(&lca);
    }
    let (mut a, mut b) = (lca.clone(), lca.clone());
    for (left, op) in ops.iter().skip(ops.len() / 4) {
        tick += 1;
        if *left {
            a = a.apply(op, ts(tick, 1)).0;
            assert_roundtrip(&a);
        } else {
            b = b.apply(op, ts(tick, 2)).0;
            assert_roundtrip(&b);
        }
    }
    assert_roundtrip(&M::merge(&lca, &a, &b));
}

/// `(branch, op)` pairs for a type whose random op is derived from a byte.
fn op_stream<Op: std::fmt::Debug + Clone>(
    f: impl Fn(u8, u8) -> Op + Clone + 'static,
) -> impl Strategy<Value = Vec<(bool, Op)>> {
    proptest::collection::vec(
        (any::<bool>(), any::<u8>(), any::<u8>()).prop_map(move |(l, k, x)| (l, f(k, x))),
        0..48,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn counter_codec(ops in op_stream(|_, _| CounterOp::Increment)) {
        certify_codec::<Counter>(ops);
    }

    #[test]
    fn pn_counter_codec(ops in op_stream(|k, _| if k % 2 == 0 {
        PnCounterOp::Increment
    } else {
        PnCounterOp::Decrement
    })) {
        certify_codec::<PnCounter>(ops);
    }

    #[test]
    fn ew_flag_codec(ops in op_stream(|k, _| if k % 2 == 0 {
        EwFlagOp::Enable
    } else {
        EwFlagOp::Disable
    })) {
        certify_codec::<EwFlag>(ops);
    }

    #[test]
    fn ew_flag_space_codec(ops in op_stream(|k, _| if k % 2 == 0 {
        EwFlagOp::Enable
    } else {
        EwFlagOp::Disable
    })) {
        certify_codec::<EwFlagSpace>(ops);
    }

    #[test]
    fn lww_register_codec(ops in op_stream(|_, x| LwwOp::Write(u32::from(x)))) {
        certify_codec::<LwwRegister<u32>>(ops);
    }

    #[test]
    fn g_set_codec(ops in op_stream(|_, x| GSetOp::Add(u32::from(x % 16)))) {
        certify_codec::<GSet<u32>>(ops);
    }

    #[test]
    fn g_map_codec(ops in op_stream(|k, _| {
        MapOp::Set(format!("k{}", k % 4), CounterOp::Increment)
    })) {
        certify_codec::<MrdtMap<Counter>>(ops);
    }

    #[test]
    fn log_codec(ops in op_stream(|_, x| LogOp::Append(u32::from(x)))) {
        certify_codec::<MergeableLog<u32>>(ops);
    }

    #[test]
    fn or_set_codec(ops in op_stream(|k, x| if k % 3 == 0 {
        OrSetOp::Remove(u32::from(x % 8))
    } else {
        OrSetOp::Add(u32::from(x % 8))
    })) {
        certify_codec::<OrSet<u32>>(ops);
    }

    #[test]
    fn or_set_space_codec(ops in op_stream(|k, x| if k % 3 == 0 {
        OrSetOp::Remove(u32::from(x % 8))
    } else {
        OrSetOp::Add(u32::from(x % 8))
    })) {
        certify_codec::<OrSetSpace<u32>>(ops);
    }

    #[test]
    fn or_set_spacetime_codec(ops in op_stream(|k, x| if k % 3 == 0 {
        OrSetOp::Remove(u32::from(x % 8))
    } else {
        OrSetOp::Add(u32::from(x % 8))
    })) {
        // The tree-backed set is the one type with representation freedom:
        // decode yields the canonical balanced shape, and observational
        // equality (not structural) is the round-trip law — exactly what
        // `certify_codec` checks.
        certify_codec::<OrSetSpacetime<u32>>(ops);
    }

    #[test]
    fn queue_codec(ops in op_stream(|k, x| if k % 3 == 0 {
        QueueOp::Dequeue
    } else {
        QueueOp::Enqueue(u32::from(x))
    })) {
        certify_codec::<Queue<u32>>(ops);
    }

    #[test]
    fn chat_codec(ops in op_stream(|k, x| {
        ChatOp::Send(format!("#c{}", k % 3), format!("m{x}"))
    })) {
        certify_codec::<Chat>(ops);
    }

    /// The 14th type: the AVL map itself (the container under
    /// OR-set-spacetime, not an MRDT). Contents round-trip exactly; the
    /// decoded shape is the canonical balanced one; re-encode is
    /// byte-identical.
    #[test]
    fn avl_map_codec(entries in proptest::collection::vec((any::<u16>(), any::<u32>()), 0..64)) {
        let map: AvlMap<u16, u32> = entries.iter().cloned().collect();
        let bytes = map.to_wire();
        let decoded = AvlMap::<u16, u32>::from_wire(&bytes).expect("canonical bytes decode");
        prop_assert!(decoded.check_invariants().is_ok());
        prop_assert_eq!(decoded.to_sorted_vec(), map.to_sorted_vec());
        prop_assert_eq!(decoded.to_wire(), bytes);
    }
}

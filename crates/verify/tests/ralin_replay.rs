//! Deterministic failure replay: a `Φ_ra` failure prints the seed of the
//! failing fleet run, and `PEEPUL_REPLAY=<seed>` re-runs exactly that
//! schedule — the fleet's op stream is a pure function of the seed, so
//! the counterexample reproduces byte-for-byte.
//!
//! This lives in its own test binary (and is a single `#[test]`) because
//! it sets the `PEEPUL_REPLAY` process environment variable: sharing a
//! process with other tests would race their reads of it.

use peepul_net::ReplicationMutation;
use peepul_verify::suite::ra_lin_counter;
use peepul_verify::RaLinSuiteConfig;

/// Extracts the `{seed}` out of a "… re-run with PEEPUL_REPLAY={seed}"
/// failure message.
fn printed_seed(failure: &str) -> u64 {
    let tail = failure
        .split("PEEPUL_REPLAY=")
        .nth(1)
        .expect("failure names the replay seed");
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("replay seed parses")
}

/// The failure body: everything after the run/seed preamble and before
/// the replay hint — i.e. the counterexample itself, independent of
/// which run index tripped it.
fn failure_body(failure: &str) -> &str {
    let start = failure.find("): ").expect("preamble") + 3;
    let end = failure.find(" — re-run").expect("replay hint");
    &failure[start..end]
}

#[test]
fn printed_seed_replays_the_exact_failure() {
    // Force a failure through the real suite path by enacting a
    // replication mutant across the fleet runs.
    let config = RaLinSuiteConfig {
        runs: 6,
        replicas: 4,
        ops_per_replica: 8,
        gossip_every: 2,
        loss_per_mille: 100,
        partition_one: true,
        mutation: ReplicationMutation::DropVisibilityEdge,
        ..RaLinSuiteConfig::default()
    };
    let first = ra_lin_counter(&config);
    let first_failure = first.failure.expect("mutated fleet must fail Φ_ra");
    assert!(
        first_failure.contains("re-run with PEEPUL_REPLAY="),
        "failure must print a replay seed: {first_failure}"
    );
    let seed = printed_seed(&first_failure);

    // Re-run with the printed seed. Shift the suite's base seed so only
    // the env var can steer the run back to the failing schedule, and
    // give it a single run: replay mode must need no sweep.
    std::env::set_var("PEEPUL_REPLAY", seed.to_string());
    let replay = ra_lin_counter(&RaLinSuiteConfig {
        runs: 1,
        seed: config.seed.wrapping_add(1_000_000),
        ..config.clone()
    });
    std::env::remove_var("PEEPUL_REPLAY");

    let replay_failure = replay.failure.expect("replay must reproduce the failure");
    assert_eq!(printed_seed(&replay_failure), seed);
    assert_eq!(
        failure_body(&replay_failure),
        failure_body(&first_failure),
        "replayed counterexample must match the original byte-for-byte"
    );

    // And the seed really is the schedule: a healthy (unmutated) replay
    // of the same seed certifies, so the failure is the mutant's, not
    // the schedule's.
    std::env::set_var("PEEPUL_REPLAY", seed.to_string());
    let healthy = ra_lin_counter(&RaLinSuiteConfig {
        runs: 1,
        mutation: ReplicationMutation::None,
        ..config
    });
    std::env::remove_var("PEEPUL_REPLAY");
    assert!(healthy.passed(), "{:?}", healthy.failure);
}

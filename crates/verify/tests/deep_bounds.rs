//! Nightly-depth certification runs.
//!
//! The PR gate certifies every data type at the `SuiteConfig::default()`
//! budget (bounded depth 4, 2 branches, 20 random runs — fractions of a
//! second per type). These tests re-run the same obligations at bounds the
//! PR gate cannot afford: deeper exhaustive exploration, a third branch
//! (criss-cross merges only appear with ≥3 branches) and an order of
//! magnitude more random executions.
//!
//! They are `#[ignore]`d so `cargo test` stays fast; the scheduled CI job
//! runs them with:
//!
//! ```sh
//! cargo test -q -p peepul-verify --release -- --ignored
//! ```

use peepul_verify::suite::{certify_all, SuiteConfig};
use peepul_verify::RandomConfig;

fn assert_all_pass(config: &SuiteConfig, label: &str) {
    let mut failures = Vec::new();
    for s in certify_all(config) {
        assert!(
            s.obligations.total() > 0,
            "{label}: {} checked no obligations — vacuous run",
            s.name
        );
        if !s.passed() {
            failures.push(format!("{}: {}", s.name, s.failure.unwrap()));
        }
    }
    assert!(
        failures.is_empty(),
        "{label} failures:\n{}",
        failures.join("\n")
    );
}

/// Deeper exhaustive pass: depth 6 on two branches reaches executions with
/// three concurrent operations per branch plus a merge and its re-check.
#[test]
#[ignore = "nightly: ~minutes of bounded-exhaustive exploration"]
fn certify_all_exhaustive_depth_6() {
    assert_all_pass(
        &SuiteConfig {
            bounded_steps: 6,
            bounded_branches: 2,
            random_runs: 0,
            random: RandomConfig::default(),
        },
        "depth 6 / 2 branches",
    );
}

/// Third branch: the smallest setting where criss-cross histories (and so
/// recursive virtual LCAs) occur inside the exhaustive envelope.
#[test]
#[ignore = "nightly: ~minutes of bounded-exhaustive exploration"]
fn certify_all_exhaustive_3_branches() {
    assert_all_pass(
        &SuiteConfig {
            bounded_steps: 5,
            bounded_branches: 3,
            random_runs: 0,
            random: RandomConfig::default(),
        },
        "depth 5 / 3 branches",
    );
}

/// Long-haul randomized pass: 100 seeded executions of 300 steps over up
/// to 5 branches per data type — the scale knob the bounded pass lacks.
/// Obligation checking grows superlinearly with execution length, so this
/// is ~20x the PR-gate random budget (20 runs of 150 steps) in wall-clock.
#[test]
#[ignore = "nightly: long randomized certification"]
fn certify_all_random_long_haul() {
    assert_all_pass(
        &SuiteConfig {
            bounded_steps: 3,
            bounded_branches: 2,
            random_runs: 100,
            random: RandomConfig {
                steps: 300,
                max_branches: 5,
                ..RandomConfig::default()
            },
        },
        "random long-haul",
    );
}

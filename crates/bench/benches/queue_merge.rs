//! Criterion micro-benchmark behind **Fig. 12**: three-way queue merge,
//! Peepul (linear, set-semantics) vs Quark (quadratic relational
//! reification), at increasing session sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peepul_bench::queue_session;
use peepul_core::Mrdt;
use peepul_quark::QuarkQueue;
use peepul_types::queue::Queue;

fn bench_queue_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_merge");
    // Quark merges take seconds at these sizes; keep sampling modest.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for n in [250usize, 500, 1000] {
        let (pl, pa, pb) = queue_session::<Queue<u64>>(n, 42);
        group.bench_with_input(BenchmarkId::new("peepul", n), &n, |bench, _| {
            bench.iter(|| Queue::merge(&pl, &pa, &pb));
        });
        let (ql, qa, qb) = queue_session::<QuarkQueue<u64>>(n, 42);
        group.bench_with_input(BenchmarkId::new("quark", n), &n, |bench, _| {
            bench.iter(|| QuarkQueue::merge(&ql, &qa, &qb));
        });
    }
    group.finish();
}

fn bench_queue_local_ops(c: &mut Criterion) {
    use peepul_bench::Ticker;
    use peepul_types::queue::QueueOp;
    // Local operations are identical between the two implementations; this
    // isolates the merge as the only difference (the paper's premise).
    let mut group = c.benchmark_group("queue_local_ops");
    group.bench_function("enqueue_dequeue_cycle_1000", |b| {
        b.iter(|| {
            let mut t = Ticker::new();
            let mut q: Queue<u64> = Queue::initial();
            for v in 0..1000u64 {
                q = q.apply(&QueueOp::Enqueue(v), t.next(0)).0;
            }
            for _ in 0..1000 {
                q = q.apply(&QueueOp::Dequeue, t.next(0)).0;
            }
            q
        });
    });
    group.finish();
}

criterion_group!(benches, bench_queue_merge, bench_queue_local_ops);
criterion_main!(benches);

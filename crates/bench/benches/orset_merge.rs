//! Ablation bench: three-way **merge** cost of the three OR-set variants.
//!
//! The paper reports only operation throughput (Fig. 14); this bench
//! isolates the merge, where OR-set-space pays its deduplication cost and
//! OR-set-spacetime pays tree flatten/rebuild — the design-choice
//! trade-off DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peepul_bench::orset_session;
use peepul_core::Mrdt;
use peepul_types::or_set::OrSet;
use peepul_types::or_set_space::OrSetSpace;
use peepul_types::or_set_spacetime::OrSetSpacetime;

fn bench_orset_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("orset_merge");
    for n in [1000usize, 4000, 16000] {
        let (l, a, b) = orset_session::<OrSet<u64>>(n, 42);
        group.bench_with_input(BenchmarkId::new("or_set", n), &n, |bench, _| {
            bench.iter(|| OrSet::merge(&l, &a, &b));
        });
        let (l, a, b) = orset_session::<OrSetSpace<u64>>(n, 42);
        group.bench_with_input(BenchmarkId::new("or_set_space", n), &n, |bench, _| {
            bench.iter(|| OrSetSpace::merge(&l, &a, &b));
        });
        let (l, a, b) = orset_session::<OrSetSpacetime<u64>>(n, 42);
        group.bench_with_input(BenchmarkId::new("or_set_spacetime", n), &n, |bench, _| {
            bench.iter(|| OrSetSpacetime::merge(&l, &a, &b));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orset_merge);
criterion_main!(benches);

//! Ablation bench: Okasaki's two-list queue vs a naive single-vector
//! queue — substantiating the amortized `O(1)` enqueue/dequeue claim the
//! paper inherits from Okasaki (§6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peepul_bench::Ticker;
use peepul_core::Mrdt;
use peepul_types::queue::{Queue, QueueOp};

/// Naive persistent queue: one vector, dequeue removes the head — `O(n)`
/// per dequeue.
#[derive(Clone, PartialEq, Debug, Default)]
struct NaiveQueue(Vec<(peepul_core::Timestamp, u64)>);

impl NaiveQueue {
    fn enqueue(&self, t: peepul_core::Timestamp, v: u64) -> Self {
        let mut next = self.clone();
        next.0.push((t, v));
        next
    }

    fn dequeue(&self) -> Self {
        let mut next = self.clone();
        if !next.0.is_empty() {
            next.0.remove(0);
        }
        next
    }
}

fn cycle_two_list(n: u64) -> Queue<u64> {
    let mut t = Ticker::new();
    let mut q: Queue<u64> = Queue::initial();
    for v in 0..n {
        q = q.apply(&QueueOp::Enqueue(v), t.next(0)).0;
        if v % 2 == 1 {
            q = q.apply(&QueueOp::Dequeue, t.next(0)).0;
        }
    }
    q
}

fn cycle_naive(n: u64) -> NaiveQueue {
    let mut t = Ticker::new();
    let mut q = NaiveQueue::default();
    for v in 0..n {
        q = q.enqueue(t.next(0), v);
        if v % 2 == 1 {
            q = q.dequeue();
        }
    }
    q
}

fn bench_amortized(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_amortized");
    for n in [1000u64, 4000] {
        group.bench_with_input(BenchmarkId::new("two_list", n), &n, |b, &n| {
            b.iter(|| cycle_two_list(n));
        });
        group.bench_with_input(BenchmarkId::new("naive_vec", n), &n, |b, &n| {
            b.iter(|| cycle_naive(n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_amortized);
criterion_main!(benches);

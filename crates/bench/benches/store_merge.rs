//! Store-level merge cost: `BranchStore::merge` through the backend and
//! memoization layers, in-memory vs on-disk segment, cache on vs off.
//!
//! The type-level benches (`orset_merge` etc.) isolate `M::merge`; this
//! one measures the whole store path the application actually calls —
//! LCA search, virtual base merges, content addressing, backend publish.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peepul_store::{Backend, BranchStore, MemoryBackend, SegmentBackend, SegmentOptions};
use peepul_types::or_set_space::{OrSetOp, OrSetSpace};

/// Builds a store holding a criss-cross (two maximal merge bases between
/// `x` and `y2`) with `n` elements per side, plus `probes` branches
/// forked off `x` — each probe merge re-derives the same virtual base
/// merge, which is exactly what the memo caches.
fn criss_cross_store<B: Backend>(
    backend: B,
    n: u32,
    probes: u32,
) -> BranchStore<OrSetSpace<u64>, B> {
    let mut s = BranchStore::with_backend("x", backend).expect("open");
    for i in 0..n {
        s.branch_mut("x")
            .unwrap()
            .apply(&OrSetOp::Add(u64::from(i)))
            .unwrap();
    }
    s.branch_mut("x").unwrap().fork("y").unwrap();
    for i in 0..n {
        s.branch_mut("x")
            .unwrap()
            .apply(&OrSetOp::Add(u64::from(1_000 + i)))
            .unwrap();
        s.branch_mut("y")
            .unwrap()
            .apply(&OrSetOp::Add(u64::from(2_000 + i)))
            .unwrap();
    }
    s.branch_mut("x").unwrap().fork("x-pin").unwrap();
    s.branch_mut("y").unwrap().fork("y2").unwrap();
    s.branch_mut("x").unwrap().merge_from("y").unwrap();
    s.branch_mut("y2").unwrap().merge_from("x-pin").unwrap();
    s.branch_mut("x")
        .unwrap()
        .apply(&OrSetOp::Add(9_999))
        .unwrap();
    s.branch_mut("y2")
        .unwrap()
        .apply(&OrSetOp::Add(9_998))
        .unwrap();
    for p in 0..probes {
        s.branch_mut("x")
            .unwrap()
            .fork(format!("probe-{p}"))
            .unwrap();
    }
    s
}

fn bench_store_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_merge");
    for n in [200u32, 800] {
        for cache in [true, false] {
            let label = if cache { "cached" } else { "uncached" };
            // Build once; every `lca_state` call between the criss-cross
            // heads re-derives the virtual base merge — a cache hit when
            // memoization is on, a full O(state) re-merge when off. Since
            // the read-path redesign `lca_state` runs on `&s`: no `mut`.
            let s = criss_cross_store(MemoryBackend::new(), n, 0);
            s.set_merge_cache(cache);
            group.bench_with_input(
                BenchmarkId::new(format!("virtual_lca/{label}"), n),
                &n,
                |bench, _| {
                    bench.iter(|| s.lca_state("x", "y2").unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_backend_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_publish");
    let scratch = std::env::temp_dir().join(format!("peepul-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut run = 0u32;
    for n in [250u32, 500] {
        group.bench_with_input(BenchmarkId::new("memory", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut s: BranchStore<OrSetSpace<u64>> = BranchStore::new("main");
                for i in 0..n {
                    s.branch_mut("main")
                        .unwrap()
                        .apply(&OrSetOp::Add(u64::from(i)))
                        .unwrap();
                }
                s.commit_count()
            });
        });
        group.bench_with_input(BenchmarkId::new("segment", n), &n, |bench, &n| {
            bench.iter(|| {
                run += 1;
                let backend = SegmentBackend::open_with(
                    scratch.join(run.to_string()),
                    SegmentOptions {
                        durable: false,
                        ..SegmentOptions::default()
                    },
                )
                .unwrap();
                let mut s: BranchStore<OrSetSpace<u64>, _> =
                    BranchStore::with_backend("main", backend).unwrap();
                for i in 0..n {
                    s.branch_mut("main")
                        .unwrap()
                        .apply(&OrSetOp::Add(u64::from(i)))
                        .unwrap();
                }
                s.commit_count()
            });
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&scratch);
}

criterion_group!(benches, bench_store_merge, bench_backend_publish);
criterion_main!(benches);

//! Criterion micro-benchmark behind **Fig. 14**: per-operation cost of the
//! three OR-set variants at realistic set sizes — the `O(n)` list scans of
//! OR-set/OR-set-space vs the `O(log n)` tree paths of OR-set-spacetime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peepul_bench::Ticker;
use peepul_core::Mrdt;
use peepul_types::or_set::{OrSet, OrSetOp, OrSetQuery};
use peepul_types::or_set_space::OrSetSpace;
use peepul_types::or_set_spacetime::OrSetSpacetime;

fn filled<M: Mrdt<Op = OrSetOp<u64>>>(n: u64) -> M {
    let mut t = Ticker::new();
    let mut s = M::initial();
    for x in 0..n {
        s = s.apply(&OrSetOp::Add(x), t.next(0)).0;
    }
    s
}

fn bench_lookup(c: &mut Criterion) {
    // Lookups go through the pure query path since the query/update split
    // — no timestamp, no successor state, exactly what `BranchStore::read`
    // serves.
    let mut group = c.benchmark_group("orset_lookup");
    for n in [256u64, 1024, 4096] {
        let plain: OrSet<u64> = filled(n);
        group.bench_with_input(BenchmarkId::new("or_set", n), &n, |b, &n| {
            b.iter(|| plain.query(&OrSetQuery::Lookup(n / 2)));
        });
        let space: OrSetSpace<u64> = filled(n);
        group.bench_with_input(BenchmarkId::new("or_set_space", n), &n, |b, &n| {
            b.iter(|| space.query(&OrSetQuery::Lookup(n / 2)));
        });
        let tree: OrSetSpacetime<u64> = filled(n);
        group.bench_with_input(BenchmarkId::new("or_set_spacetime", n), &n, |b, &n| {
            b.iter(|| tree.query(&OrSetQuery::Lookup(n / 2)));
        });
    }
    group.finish();
}

fn bench_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("orset_add");
    for n in [256u64, 1024, 4096] {
        let t = peepul_core::Timestamp::new(n + 1, peepul_core::ReplicaId::new(0));
        let plain: OrSet<u64> = filled(n);
        group.bench_with_input(BenchmarkId::new("or_set", n), &n, |b, &n| {
            b.iter(|| plain.apply(&OrSetOp::Add(n / 2), t));
        });
        let space: OrSetSpace<u64> = filled(n);
        group.bench_with_input(BenchmarkId::new("or_set_space", n), &n, |b, &n| {
            b.iter(|| space.apply(&OrSetOp::Add(n / 2), t));
        });
        let tree: OrSetSpacetime<u64> = filled(n);
        group.bench_with_input(BenchmarkId::new("or_set_spacetime", n), &n, |b, &n| {
            b.iter(|| tree.apply(&OrSetOp::Add(n / 2), t));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_add);
criterion_main!(benches);

//! Shared workload generators and measurement helpers for the evaluation
//! harness (paper §7.2).
//!
//! Each figure binary (`fig12`–`fig15`, `table3`, `ablation_lca`) builds on
//! the generators here so that Peepul and Quark data types are always
//! driven through **identical** operation sequences with identical
//! timestamps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use peepul_core::{Mrdt, ReplicaId, Timestamp};
use peepul_types::or_set::{OrSetOp, OrSetQuery};
use peepul_types::queue::QueueOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic timestamp source shared by all workloads: a global tick
/// plus a replica id per branch (exactly what the store mints).
#[derive(Debug)]
pub struct Ticker {
    tick: u64,
}

impl Ticker {
    /// Starts at tick 0.
    pub fn new() -> Self {
        Ticker { tick: 0 }
    }

    /// Mints the next timestamp for `replica`.
    pub fn next(&mut self, replica: u32) -> Timestamp {
        self.tick += 1;
        Timestamp::new(self.tick, ReplicaId::new(replica))
    }
}

impl Default for Ticker {
    fn default() -> Self {
        Ticker::new()
    }
}

/// One Fig. 12 session: an LCA built by `n` random queue operations (75:25
/// enqueue:dequeue), then two divergent versions built by `n/2` further
/// operations each. Returns `(lca, a, b)`.
///
/// Generic over the queue implementation so the identical session drives
/// both Peepul's queue and Quark's.
pub fn queue_session<M>(n: usize, seed: u64) -> (M, M, M)
where
    M: Mrdt<Op = QueueOp<u64>>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ticker = Ticker::new();
    let mut value = 0u64;
    let mut op = |rng: &mut StdRng| {
        if rng.gen_bool(0.75) {
            value += 1;
            QueueOp::Enqueue(value)
        } else {
            QueueOp::Dequeue
        }
    };
    let mut lca = M::initial();
    for _ in 0..n {
        let o = op(&mut rng);
        lca = lca.apply(&o, ticker.next(0)).0;
    }
    let mut a = lca.clone();
    for _ in 0..n / 2 {
        let o = op(&mut rng);
        a = a.apply(&o, ticker.next(1)).0;
    }
    let mut b = lca.clone();
    for _ in 0..n / 2 {
        let o = op(&mut rng);
        b = b.apply(&o, ticker.next(2)).0;
    }
    (lca, a, b)
}

/// One Fig. 13 session: `n/2` LCA operations then `n/4` operations on each
/// branch, 50:50 add:remove over values in `0..1000`. Returns `(lca, a, b)`.
pub fn orset_session<M>(n: usize, seed: u64) -> (M, M, M)
where
    M: Mrdt<Op = OrSetOp<u64>>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ticker = Ticker::new();
    let op = |rng: &mut StdRng| {
        let x = rng.gen_range(0..1000u64);
        if rng.gen_bool(0.5) {
            OrSetOp::Add(x)
        } else {
            OrSetOp::Remove(x)
        }
    };
    let mut lca = M::initial();
    for _ in 0..n / 2 {
        let o = op(&mut rng);
        lca = lca.apply(&o, ticker.next(0)).0;
    }
    let mut a = lca.clone();
    for _ in 0..n / 4 {
        let o = op(&mut rng);
        a = a.apply(&o, ticker.next(1)).0;
    }
    let mut b = lca.clone();
    for _ in 0..n / 4 {
        let o = op(&mut rng);
        b = b.apply(&o, ticker.next(2)).0;
    }
    (lca, a, b)
}

/// Approximate in-memory footprint of a state, for the Fig. 15 space
/// series.
pub trait SpaceUsage {
    /// Rough heap bytes occupied by the state's payload.
    fn approx_bytes(&self) -> usize;
}

/// Bytes per stored `(u64 element, Timestamp)` pair in a flat list.
pub const PAIR_BYTES: usize = 8 + 8 + 4 + 4; // elem + tick + replica + padding

impl SpaceUsage for peepul_types::or_set::OrSet<u64> {
    fn approx_bytes(&self) -> usize {
        self.pair_count() * PAIR_BYTES
    }
}

impl SpaceUsage for peepul_types::or_set_space::OrSetSpace<u64> {
    fn approx_bytes(&self) -> usize {
        self.pair_count() * PAIR_BYTES
    }
}

impl SpaceUsage for peepul_types::or_set_spacetime::OrSetSpacetime<u64> {
    fn approx_bytes(&self) -> usize {
        // Tree node: entry + two child pointers + height + size.
        self.pair_count() * (PAIR_BYTES + 2 * 8 + 4 + 8)
    }
}

impl SpaceUsage for peepul_quark::QuarkOrSet<u64> {
    fn approx_bytes(&self) -> usize {
        self.pair_count() * PAIR_BYTES
    }
}

/// Outcome of one Fig. 14/15 run.
#[derive(Copy, Clone, Debug)]
pub struct OrSetRun {
    /// Total wall-clock time for the whole workload including merges.
    pub elapsed: std::time::Duration,
    /// Maximum pair count observed across the run (both branches).
    pub max_pairs: usize,
    /// Maximum approximate footprint observed across the run.
    pub max_bytes: usize,
}

/// The Fig. 14/15 workload: two branches from an empty set, operations
/// drawn 70% lookup / 20% add / 10% remove (values in `0..1000`),
/// alternating randomly between the branches, with a merge every 500
/// operations (after which both branches resume from the merged state).
/// Lookups ride the commit-free query path — they observe a branch without
/// transforming it, exactly as the redesigned store serves them.
pub fn orset_workload<M>(total_ops: usize, seed: u64) -> OrSetRun
where
    M: Mrdt<Op = OrSetOp<u64>, Query = OrSetQuery<u64>> + SpaceUsage,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ticker = Ticker::new();
    let start = std::time::Instant::now();
    let mut lca = M::initial();
    let mut a = lca.clone();
    let mut b = lca.clone();
    let mut max_pairs = 0usize;
    let mut max_bytes = 0usize;
    for i in 0..total_ops {
        let x = rng.gen_range(0..1000u64);
        let roll: f64 = rng.gen();
        let on_a = rng.gen_bool(0.5);
        if roll < 0.7 {
            // Query path: pure observation, no timestamp, no new state.
            let q = OrSetQuery::Lookup(x);
            std::hint::black_box(if on_a { a.query(&q) } else { b.query(&q) });
        } else {
            let op = if roll < 0.9 {
                OrSetOp::Add(x)
            } else {
                OrSetOp::Remove(x)
            };
            if on_a {
                a = a.apply(&op, ticker.next(1)).0;
            } else {
                b = b.apply(&op, ticker.next(2)).0;
            }
        }
        if i % 500 == 499 {
            let merged = M::merge(&lca, &a, &b);
            lca = merged.clone();
            a = merged.clone();
            b = merged;
        }
        if i % 100 == 0 {
            let bytes = a.approx_bytes() + b.approx_bytes();
            max_bytes = max_bytes.max(bytes);
            max_pairs = max_pairs.max(bytes / PAIR_BYTES);
        }
    }
    OrSetRun {
        elapsed: start.elapsed(),
        max_pairs,
        max_bytes,
    }
}

/// Times one closure invocation.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (std::time::Duration, R) {
    let start = std::time::Instant::now();
    let r = f();
    (start.elapsed(), r)
}

/// Splices a shared `"obs"` section into a bench report produced by a
/// bin's `render_json` — a flat `metric name → value` snapshot of the
/// observability registry the workload ran against, so `BENCH_*.json`
/// numbers and live `peepul-cli metrics` expositions come from one
/// source of truth. Samples keep their full label-qualified exposition
/// names (quotes JSON-escaped). A disabled spine contributes an empty
/// section.
pub fn with_obs_section(json: &str, obs: &peepul_obs::Obs) -> String {
    let samples = peepul_obs::parse_exposition(&obs.registry().render()).unwrap_or_default();
    let mut entries = String::new();
    for (i, s) in samples.iter().enumerate() {
        let mut key = s.name.clone();
        if !s.labels.is_empty() {
            let labels: Vec<String> = s
                .labels
                .iter()
                .map(|(k, v)| {
                    format!(
                        "{k}=\\\"{}\\\"",
                        v.replace('\\', "\\\\").replace('"', "\\\"")
                    )
                })
                .collect();
            key = format!("{key}{{{}}}", labels.join(","));
        }
        let comma = if i + 1 < samples.len() { "," } else { "" };
        entries.push_str(&format!("    \"{key}\": {:.6}{comma}\n", s.value));
    }
    let body = json
        .trim_end()
        .strip_suffix('}')
        .expect("report must be a render_json object")
        .trim_end();
    format!("{body},\n  \"obs\": {{\n{entries}  }}\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_quark::QuarkQueue;
    use peepul_types::or_set_space::OrSetSpace;
    use peepul_types::queue::Queue;

    #[test]
    fn queue_sessions_are_identical_across_implementations() {
        let (pl, pa, pb) = queue_session::<Queue<u64>>(200, 42);
        let (ql, qa, qb) = queue_session::<QuarkQueue<u64>>(200, 42);
        assert_eq!(pl.to_list(), ql.to_list());
        assert_eq!(pa.to_list(), qa.to_list());
        assert_eq!(pb.to_list(), qb.to_list());
    }

    #[test]
    fn queue_session_merges_agree() {
        let (pl, pa, pb) = queue_session::<Queue<u64>>(300, 7);
        let (ql, qa, qb) = queue_session::<QuarkQueue<u64>>(300, 7);
        let pm = Queue::merge(&pl, &pa, &pb);
        let qm = QuarkQueue::merge(&ql, &qa, &qb);
        assert_eq!(pm.to_list(), qm.to_list());
    }

    #[test]
    fn orset_workload_runs_and_reports() {
        let run = orset_workload::<OrSetSpace<u64>>(2000, 3);
        assert!(run.max_pairs > 0);
        assert!(run.max_bytes > 0);
    }

    #[test]
    fn obs_section_splices_registry_snapshot() {
        let obs = peepul_obs::Obs::new(peepul_obs::ObsConfig::default());
        obs.registry().counter("peepul_test_ops_total").add(3);
        let report = "{\n  \"schema\": \"x\",\n  \"metrics\": {\n    \"m\": 1\n  }\n}\n";
        let out = with_obs_section(report, &obs);
        assert!(out.contains("\"obs\": {"));
        assert!(out.contains("\"peepul_test_ops_total\": 3.000000"));
        // Still one well-formed object: braces balance and the original
        // metrics survive.
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert!(out.contains("\"m\": 1"));
        // A disabled spine contributes an empty section, not a parse error.
        let empty = with_obs_section(report, &peepul_obs::Obs::disabled());
        assert!(empty.contains("\"obs\": {"));
    }

    #[test]
    fn ticker_is_strictly_increasing() {
        let mut t = Ticker::new();
        let a = t.next(0);
        let b = t.next(1);
        assert!(a < b);
    }
}

//! **Ablation** — why the store needs *recursive* virtual LCAs.
//!
//! The paper's store hands the merge function "the lowest common
//! ancestor". On criss-cross histories there are several maximal common
//! ancestors; a naive store that picks one arbitrarily feeds the merge a
//! state that is missing updates the other base has. For delta-style
//! merges — the counter's `a + b − lca` is the sharpest example — that
//! double-counts or drops increments. The recursive strategy (merge the
//! bases first, Git-style, exactly what `peepul-store` implements)
//! restores the exact LCA.
//!
//! Run: `cargo run --release -p peepul-bench --bin ablation_lca`

use peepul_bench::Ticker;
use peepul_core::Mrdt;
use peepul_types::counter::{Counter, CounterOp};

fn inc(c: &Counter, t: &mut Ticker, r: u32, times: u64) -> Counter {
    let mut c = *c;
    for _ in 0..times {
        c = c.apply(&CounterOp::Increment, t.next(r)).0;
    }
    c
}

fn main() {
    println!("# Ablation: flat (single merge-base) vs recursive virtual LCA");
    println!("# Data type: increment-only counter (merge = a + b − lca)");
    let mut t = Ticker::new();

    // Criss-cross history (6 increments in total):
    //   lca:  inc            → 1          fork a, b
    //   a1:   inc            → 2
    //   b1:   inc inc        → 3
    //   a2 = merge(lca, a1, b1) = 4;  b2 = merge(lca, b1, a1) = 4   (criss-cross)
    //   a3:   inc            → 5
    //   b3:   inc            → 5
    //   final merge(a3, b3): the merge bases are a1's and b1's heads.
    let lca = inc(&Counter::initial(), &mut t, 0, 1);
    let a1 = inc(&lca, &mut t, 1, 1);
    let b1 = inc(&lca, &mut t, 2, 2);
    let a2 = Counter::merge(&lca, &a1, &b1);
    let b2 = Counter::merge(&lca, &b1, &a1);
    let a3 = inc(&a2, &mut t, 1, 1);
    let b3 = inc(&b2, &mut t, 2, 1);
    let total_increments = 6u64;

    // Recursive virtual LCA: merge the two bases over *their* LCA.
    let virtual_lca = Counter::merge(&lca, &a1, &b1);
    let recursive = Counter::merge(&virtual_lca, &a3, &b3);

    // Flat strategies: pick one base arbitrarily.
    let flat_a = Counter::merge(&a1, &a3, &b3);
    let flat_b = Counter::merge(&b1, &a3, &b3);

    println!("specification (total increments): {total_increments}");
    println!(
        "recursive virtual LCA ({}):  merged = {}",
        virtual_lca.count(),
        recursive.count()
    );
    println!(
        "flat LCA = a1's head ({}):   merged = {}",
        a1.count(),
        flat_a.count()
    );
    println!(
        "flat LCA = b1's head ({}):   merged = {}",
        b1.count(),
        flat_b.count()
    );

    assert_eq!(recursive.count(), total_increments, "recursive is correct");
    assert_ne!(flat_a.count(), total_increments, "flat(a1) double-counts");
    assert_ne!(flat_b.count(), total_increments, "flat(b1) double-counts");

    // And the real store gets it right end to end.
    use peepul_store::BranchStore;
    let mut db: BranchStore<Counter> = BranchStore::new("a");
    db.branch_mut("a")
        .unwrap()
        .apply(&CounterOp::Increment)
        .unwrap();
    db.branch_mut("a").unwrap().fork("b").unwrap();
    db.branch_mut("a")
        .unwrap()
        .apply(&CounterOp::Increment)
        .unwrap();
    db.branch_mut("b")
        .unwrap()
        .apply(&CounterOp::Increment)
        .unwrap();
    db.branch_mut("b")
        .unwrap()
        .apply(&CounterOp::Increment)
        .unwrap();
    db.branch_mut("a").unwrap().merge_from("b").unwrap();
    db.branch_mut("b").unwrap().merge_from("a").unwrap();
    db.branch_mut("a")
        .unwrap()
        .apply(&CounterOp::Increment)
        .unwrap();
    db.branch_mut("b")
        .unwrap()
        .apply(&CounterOp::Increment)
        .unwrap();
    db.branch_mut("a").unwrap().merge_from("b").unwrap();
    let store_count = db.state("a").unwrap().count();
    println!("peepul-store (recursive merge-base): merged = {store_count}");
    assert_eq!(store_count, total_increments);

    println!();
    println!("# A store that picks an arbitrary merge base double-counts the");
    println!("# other base's updates on criss-cross histories; peepul-store's");
    println!("# recursive virtual LCA (git merge-recursive style) is load-bearing.");
}

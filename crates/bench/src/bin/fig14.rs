//! **Figure 14** — running time of the three Peepul OR-set variants.
//!
//! Protocol (paper §7.2.2): 70% lookups / 20% adds / 10% removes on two
//! branches from an empty set, a merge every 500 operations, total
//! operation counts 5000..=30000. The tree-backed OR-set-spacetime's
//! `O(log n)` operations dominate the `O(n)` list scans of the other two.
//!
//! Run: `cargo run --release -p peepul-bench --bin fig14 [max_ops]`

use peepul_bench::orset_workload;
use peepul_types::or_set::OrSet;
use peepul_types::or_set_space::OrSetSpace;
use peepul_types::or_set_spacetime::OrSetSpacetime;

fn main() {
    let max_ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    println!("# Figure 14: OR-set running time (seconds) — 70% rd / 20% add / 10% rm,");
    println!("# two branches, merge every 500 ops");
    println!(
        "{:>8} {:>12} {:>14} {:>18}",
        "n_ops", "or_set_s", "or_set_space_s", "or_set_spacetime_s"
    );
    let mut n = 5_000;
    while n <= max_ops {
        let seed = 0xF164 + n as u64;
        let plain = orset_workload::<OrSet<u64>>(n, seed);
        let space = orset_workload::<OrSetSpace<u64>>(n, seed);
        let spacetime = orset_workload::<OrSetSpacetime<u64>>(n, seed);
        println!(
            "{:>8} {:>12.4} {:>14.4} {:>18.4}",
            n,
            plain.elapsed.as_secs_f64(),
            space.elapsed.as_secs_f64(),
            spacetime.elapsed.as_secs_f64(),
        );
        n += 5_000;
    }
    println!("# Expected shape: or_set_spacetime fastest (balanced-tree lookups),");
    println!("# or_set slowest (duplicate pairs inflate every O(n) scan).");
}

//! **Observability-overhead benchmark** — the instrumentation half of the
//! CI perf gate: proves the metrics spine is cheap enough to leave on.
//!
//! Drives the identical single-branch commit workload — the daemon's
//! `put` path: `Kv` map-of-LWW-register writes over rotating keys —
//! through two stores: one with the full `peepul-obs` spine attached
//! (counters, latency histograms, trace ring — everything the daemon
//! enables by default) and one attached to `ObsConfig::disabled()` (the
//! hot paths see `None` and skip all of it). After an untimed warmup
//! pair, the configurations run several rounds with the order swapped
//! each round, and each side's throughput is computed over its **total**
//! commits and wall time — so scheduler noise and allocator drift cancel
//! rather than landing on one side.
//!
//! Gated metrics:
//!
//! * `obs_commits_per_sec_enabled` / `obs_commits_per_sec_disabled`
//!   (higher);
//! * `obs_overhead_pct` — the throughput the instrumentation costs, as a
//!   percentage of the disabled configuration (lower), **hard-gated: the
//!   run fails unless < 5.0** — the ISSUE's instrumentation budget.
//!
//! The hard gate holds regardless of any baseline; `--baseline <path>`
//! additionally applies the usual regression contract shared with the
//! other bench bins (compare when the file exists, else establish it).
//!
//! Run: `cargo run --release -p peepul-bench --bin bench_obs -- \
//!           --out BENCH_obs.json --baseline BENCH_obs.baseline.json`

use peepul_bench::with_obs_section;
use peepul_obs::{Obs, ObsConfig};
use peepul_server::Kv;
use peepul_store::{BranchStore, StoreMetrics};
use peepul_types::lww_register::LwwOp;
use peepul_types::map::MapOp;
use std::fmt::Write as _;
use std::time::Instant;

/// Direction of improvement for a metric.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Better {
    Higher,
    Lower,
}

struct Metric {
    name: &'static str,
    value: f64,
    better: Better,
}

fn quick_mode(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
        || std::env::var("PEEPUL_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// One round of the commit workload against a fresh store carrying the
/// given spine: the daemon's `put` shape, one `MapOp::Set` commit per
/// iteration over 512 rotating keys. Returns commits per second.
fn commit_round(obs: &Obs, commits: u32) -> f64 {
    let mut s: BranchStore<Kv> = BranchStore::new("main");
    s.set_metrics(StoreMetrics::attach(obs));
    let keys: Vec<String> = (0..512).map(|k| format!("key-{k}")).collect();
    let start = Instant::now();
    {
        let mut main = s.branch_mut("main").unwrap();
        for i in 0..commits {
            let key = keys[i as usize % keys.len()].clone();
            main.apply(&MapOp::Set(key, LwwOp::Write(format!("value-{i}"))))
                .unwrap();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    s.publish_gauges();
    f64::from(commits) / secs
}

/// Renders the report as JSON (hand-rolled: the workspace deliberately
/// has no serde; EXPERIMENTS.md documents this schema).
fn render_json(metrics: &[Metric], quick: bool, info: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"peepul/bench-obs/v1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"metrics\": {{");
    for (i, m) in metrics.iter().enumerate() {
        let better = match m.better {
            Better::Higher => "higher",
            Better::Lower => "lower",
        };
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"value\": {:.6}, \"better\": \"{better}\" }}{comma}",
            m.name, m.value
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"info\": {{");
    for (i, (name, value)) in info.iter().enumerate() {
        let comma = if i + 1 < info.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{name}\": {value:.6}{comma}");
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

/// Extracts `"name": { "value": <f64>` from a report produced by
/// `render_json` (tolerant scan, not a general JSON parser).
fn baseline_value(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\"");
    let after_key = &json[json.find(&key)? + key.len()..];
    let after_value = &after_key[after_key.find("\"value\":")? + "\"value\":".len()..];
    let num: String = after_value
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = quick_mode(&args);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_obs.json".into());
    let baseline_path = flag_value(&args, "--baseline");
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.25);

    let (commits, rounds) = if quick { (4_096, 6) } else { (8_192, 10) };
    println!(
        "# bench_obs ({} mode)",
        if quick { "quick" } else { "full" }
    );

    // The instrumented spine the workload reports into; the final report
    // splices its snapshot, so the gate's own run is also the shared
    // obs-section example.
    let enabled = Obs::new(ObsConfig::default());
    let disabled = Obs::disabled();

    // Untimed warmup pair: the first store of a process pays one-off page
    // faults and allocator growth that would otherwise land on one side.
    commit_round(&disabled, commits);
    commit_round(&enabled, commits);

    // Alternate which configuration runs first each round, and aggregate
    // each side's throughput over total commits / total seconds: machine
    // noise and heap drift then hit both sides equally instead of
    // masquerading as instrumentation overhead.
    let (mut secs_on, mut secs_off) = (0.0f64, 0.0f64);
    for round in 0..rounds {
        let (off, on) = if round % 2 == 0 {
            let off = commit_round(&disabled, commits);
            let on = commit_round(&enabled, commits);
            (off, on)
        } else {
            let on = commit_round(&enabled, commits);
            let off = commit_round(&disabled, commits);
            (off, on)
        };
        secs_off += f64::from(commits) / off;
        secs_on += f64::from(commits) / on;
        println!("round {round}: {off:>10.0} commits/s off, {on:>10.0} commits/s on");
    }
    let total = f64::from(commits) * f64::from(rounds);
    let (rate_off, rate_on) = (total / secs_off, total / secs_on);
    let overhead_pct = ((rate_off - rate_on) / rate_off * 100.0).max(0.0);
    println!("aggregate             : {rate_off:.0} commits/s off, {rate_on:.0} commits/s on");
    println!("instrumentation cost  : {overhead_pct:.2}% of disabled throughput");

    let metrics = [
        Metric {
            name: "obs_commits_per_sec_enabled",
            value: rate_on,
            better: Better::Higher,
        },
        Metric {
            name: "obs_commits_per_sec_disabled",
            value: rate_off,
            better: Better::Higher,
        },
        Metric {
            name: "obs_overhead_pct",
            value: overhead_pct,
            better: Better::Lower,
        },
    ];
    let info = [
        ("commits_per_round", f64::from(commits)),
        ("rounds", f64::from(rounds)),
    ];

    let json = with_obs_section(&render_json(&metrics, quick, &info), &enabled);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Absolute gate first: the instrumentation budget is a property of
    // the spine, not a regression — it holds even on the first run.
    let mut failed = false;
    if overhead_pct >= 5.0 {
        eprintln!("FAIL: instrumentation overhead {overhead_pct:.2}% is not below the 5% budget");
        failed = true;
    }

    if let Some(baseline_path) = baseline_path {
        match std::fs::read_to_string(&baseline_path) {
            Err(_) => {
                // First run: establish the baseline (CI commits this file).
                std::fs::write(&baseline_path, &json).expect("write baseline");
                println!("no baseline found; wrote initial baseline to {baseline_path}");
            }
            Ok(baseline) => {
                // Only gate against a baseline recorded in the same mode.
                let baseline_quick = baseline.contains("\"quick\": true");
                if baseline_quick != quick {
                    println!(
                        "baseline at {baseline_path} was recorded in {} mode, this run is {} mode — skipping the regression gate",
                        if baseline_quick { "quick" } else { "full" },
                        if quick { "quick" } else { "full" },
                    );
                } else {
                    for m in &metrics {
                        let Some(base) = baseline_value(&baseline, m.name) else {
                            println!("baseline lacks {} — skipping", m.name);
                            continue;
                        };
                        // The overhead percentage can legitimately sit
                        // near zero, where a ratio gate is meaningless;
                        // the absolute 5% budget above is its real gate.
                        if m.name == "obs_overhead_pct" {
                            println!(
                                "{:<30} current {:>10.3}  baseline {:>10.3}  (absolute gate only)",
                                m.name, m.value, base
                            );
                            continue;
                        }
                        let (bad, ratio) = match m.better {
                            Better::Higher => (
                                m.value < base * (1.0 - tolerance),
                                m.value / base.max(f64::MIN_POSITIVE),
                            ),
                            Better::Lower => (
                                m.value > base * (1.0 + tolerance),
                                base / m.value.max(f64::MIN_POSITIVE),
                            ),
                        };
                        println!(
                            "{:<30} current {:>10.0}  baseline {:>10.0}  ratio {:.2} {}",
                            m.name,
                            m.value,
                            base,
                            ratio,
                            if bad { "REGRESSED" } else { "ok" }
                        );
                        if bad {
                            eprintln!(
                                "FAIL: {} regressed more than {:.0}% vs baseline",
                                m.name,
                                tolerance * 100.0
                            );
                            failed = true;
                        }
                    }
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

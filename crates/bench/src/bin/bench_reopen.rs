//! **Reopen benchmark** — the typed cold-start half of the CI perf gate.
//!
//! Since the codec unification a store survives a process restart as
//! *typed* state: `BranchStore::open` walks refs + commit records out of
//! a reopened `SegmentBackend`, decodes every referenced state, and
//! rebuilds the commit graph, indexes and Lamport clock. That path is on
//! the critical line of every crash recovery and every rolling restart,
//! so it is gated like the merge and sync paths:
//!
//! * `reopen_cold_start_ms` — wall time for one `SegmentBackend::open` +
//!   `BranchStore::open` over a history of the benchmark's reference size
//!   (lower is better);
//! * `reopen_states_per_sec` — typed states decoded per second during
//!   that cold start (higher);
//! * `reopen_commits_per_sec` — commit records walked + installed per
//!   second (higher).
//!
//! The `info` block additionally reports a small cold-start-vs-commit-
//! count sweep (the scaling curve, not gated — CI noise on absolute
//! milliseconds at several sizes would be all false positives).
//!
//! With `--baseline <path>`: if the file exists, each metric is compared
//! against it and the run **fails (exit 1) when any metric regresses by
//! more than `--tolerance`** (default 0.25); if it does not exist, the
//! current numbers are written there so the first CI run establishes the
//! baseline. Same contract as `bench_store` and `bench_sync`.
//!
//! Run: `cargo run --release -p peepul-bench --bin bench_reopen -- \
//!           --out BENCH_reopen.json --baseline BENCH_reopen.baseline.json`

use peepul_store::{BranchStore, SegmentBackend, SegmentOptions};
use peepul_types::or_set_space::{OrSetOp, OrSetSpace};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Direction of improvement for a metric.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Better {
    Higher,
    Lower,
}

struct Metric {
    name: &'static str,
    value: f64,
    better: Better,
}

fn quick_mode(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
        || std::env::var("PEEPUL_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("peepul-bench-reopen-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Fsync off: the benchmark measures the recovery walk + decode, not the
/// build-time disk flushing.
fn opts() -> SegmentOptions {
    SegmentOptions {
        durable: false,
        ..SegmentOptions::default()
    }
}

/// Publishes a `commits`-deep two-branch OR-set history (every commit a
/// distinct state, so reopen decodes `commits + 1` real states) and
/// returns the directory. The build reports into `obs`, so the final
/// JSON carries the shared observability snapshot of the run.
fn build_history(obs: &peepul_obs::Obs, dir: &Path, commits: u32) -> (usize, usize) {
    let backend = SegmentBackend::open_with(dir, opts()).expect("open build segment");
    let mut db: BranchStore<OrSetSpace<u64>, _> =
        BranchStore::with_backend("main", backend).expect("create store");
    db.set_metrics(peepul_store::StoreMetrics::attach(obs));
    db.branch_mut("main").unwrap().fork("feed").unwrap();
    for i in 0..commits {
        let branch = if i % 2 == 0 { "main" } else { "feed" };
        // Bounded universe (as in bench_sync): state size plateaus at 512
        // elements, so the cold-start metrics measure the reopen path, not
        // an ever-growing payload.
        db.branch_mut(branch)
            .unwrap()
            .apply(&OrSetOp::Add(u64::from(i) % 512))
            .unwrap();
        if i % 64 == 63 {
            db.branch_mut("main").unwrap().merge_from("feed").unwrap();
        }
    }
    let commits = db.commit_count();
    // Distinct states ≈ distinct state ids across commits.
    let states = {
        use std::collections::HashSet;
        db.graph()
            .ids()
            .map(|c| db.state_oid(c))
            .collect::<HashSet<_>>()
            .len()
    };
    db.flush().unwrap();
    db.publish_gauges();
    (commits, states)
}

/// One timed cold start: segment scan + typed rebuild. Returns seconds.
fn cold_start(dir: &Path) -> f64 {
    let start = Instant::now();
    let backend = SegmentBackend::open_with(dir, opts()).expect("reopen segment");
    let db: BranchStore<OrSetSpace<u64>, _> = BranchStore::open(backend).expect("typed reopen");
    let secs = start.elapsed().as_secs_f64();
    assert!(db.commit_count() > 0);
    std::hint::black_box(&db);
    secs
}

/// Renders the report as JSON (hand-rolled: the workspace deliberately
/// has no serde; EXPERIMENTS.md documents this schema).
fn render_json(metrics: &[Metric], quick: bool, info: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"peepul/bench-reopen/v1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"metrics\": {{");
    for (i, m) in metrics.iter().enumerate() {
        let better = match m.better {
            Better::Higher => "higher",
            Better::Lower => "lower",
        };
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"value\": {:.6}, \"better\": \"{better}\" }}{comma}",
            m.name, m.value
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"info\": {{");
    for (i, (name, value)) in info.iter().enumerate() {
        let comma = if i + 1 < info.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{name}\": {value:.6}{comma}");
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

/// Extracts `"name": { "value": <f64>` from a report produced by
/// `render_json` (tolerant scan, not a general JSON parser).
fn baseline_value(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\"");
    let after_key = &json[json.find(&key)? + key.len()..];
    let after_value = &after_key[after_key.find("\"value\":")? + "\"value\":".len()..];
    let num: String = after_value
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = quick_mode(&args);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_reopen.json".into());
    let baseline_path = flag_value(&args, "--baseline");
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.25);

    // Reference size for the gated metrics, plus a sweep for the curve.
    let (reference, reps, sweep): (u32, u32, &[u32]) = if quick {
        (2_000, 3, &[500, 1_000, 2_000])
    } else {
        (10_000, 5, &[1_000, 4_000, 10_000])
    };

    println!(
        "# bench_reopen ({} mode)",
        if quick { "quick" } else { "full" }
    );

    let obs = peepul_obs::Obs::new(peepul_obs::ObsConfig::default());
    let dir = scratch("reference");
    let (commit_count, state_count) = build_history(&obs, &dir, reference);
    let mut total = 0f64;
    for _ in 0..reps {
        total += cold_start(&dir);
    }
    let secs = total / f64::from(reps);
    let ms = secs * 1e3;
    let states_per_sec = state_count as f64 / secs;
    let commits_per_sec = commit_count as f64 / secs;
    println!(
        "cold start            : {ms:.1} ms for {commit_count} commits / {state_count} states \
         ({states_per_sec:.0} states/s, {commits_per_sec:.0} commits/s)"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let mut info: Vec<(String, f64)> = vec![
        ("reference_commits".into(), commit_count as f64),
        ("reference_states".into(), state_count as f64),
    ];
    for &n in sweep {
        let dir = scratch(&format!("sweep-{n}"));
        let (commits, _) = build_history(&obs, &dir, n);
        let ms = cold_start(&dir) * 1e3;
        println!("sweep                 : {commits} commits reopen in {ms:.1} ms");
        info.push((format!("sweep_ms_at_{n}"), ms));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let metrics = [
        Metric {
            name: "reopen_cold_start_ms",
            value: ms,
            better: Better::Lower,
        },
        Metric {
            name: "reopen_states_per_sec",
            value: states_per_sec,
            better: Better::Higher,
        },
        Metric {
            name: "reopen_commits_per_sec",
            value: commits_per_sec,
            better: Better::Higher,
        },
    ];

    let json = peepul_bench::with_obs_section(&render_json(&metrics, quick, &info), &obs);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    let Some(baseline_path) = baseline_path else {
        return;
    };
    match std::fs::read_to_string(&baseline_path) {
        Err(_) => {
            // First run: establish the baseline (CI commits this file).
            std::fs::write(&baseline_path, &json).expect("write baseline");
            println!("no baseline found; wrote initial baseline to {baseline_path}");
        }
        Ok(baseline) => {
            // Only gate against a baseline recorded in the same mode.
            let baseline_quick = baseline.contains("\"quick\": true");
            if baseline_quick != quick {
                println!(
                    "baseline at {baseline_path} was recorded in {} mode, this run is {} mode — skipping the regression gate",
                    if baseline_quick { "quick" } else { "full" },
                    if quick { "quick" } else { "full" },
                );
                return;
            }
            let mut regressed = false;
            for m in &metrics {
                let Some(base) = baseline_value(&baseline, m.name) else {
                    println!("baseline lacks {} — skipping", m.name);
                    continue;
                };
                let (bad, ratio) = match m.better {
                    Better::Higher => (
                        m.value < base * (1.0 - tolerance),
                        m.value / base.max(f64::MIN_POSITIVE),
                    ),
                    Better::Lower => (
                        m.value > base * (1.0 + tolerance),
                        base / m.value.max(f64::MIN_POSITIVE),
                    ),
                };
                println!(
                    "{:<32} {:>14.3} vs baseline {:>14.3}  ({:.2}x) {}",
                    m.name,
                    m.value,
                    base,
                    ratio,
                    if bad { "REGRESSED" } else { "ok" }
                );
                regressed |= bad;
            }
            if regressed {
                eprintln!(
                    "FAIL: reopen metric regressed more than {:.0}% vs baseline",
                    tolerance * 100.0
                );
                std::process::exit(1);
            }
        }
    }
}

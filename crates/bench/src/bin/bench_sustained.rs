//! **Sustained-write benchmark** — the storage-engine half of the CI
//! perf gate: group commit, segment rotation and GC under a durable
//! write load.
//!
//! Every run drives the same commit load through a *durable*
//! `SegmentBackend` (`durable: true`, real fsyncs, a small rotation cap
//! so the load spans many segments) at three durability batch sizes:
//!
//! * batch 1 — `FlushPolicy::PerCommit`, one fsync per commit;
//! * batch 16 / batch 128 — `FlushPolicy::Explicit` with an explicit
//!   `flush` every N commits, i.e. group commit with N commits riding
//!   one fsync.
//!
//! Gated metrics:
//!
//! * `sustained_commits_per_sec_batch{1,16,128}` (higher);
//! * `fsyncs_per_commit_batch1` (lower) — must stay ~1, this is the
//!   "group commit means *one* fsync per durability point" invariant;
//! * `group_commit_speedup` — batch-128 over batch-1 throughput
//!   (higher), **hard-gated: the run fails unless ≥ 5.0**;
//! * `post_gc_disk_amplification` — on-disk bytes over live payload
//!   bytes after a GC + compaction pass on a history that stranded
//!   ~half its commits (lower), **hard-gated: the run fails unless
//!   < 2.0**.
//!
//! The info section additionally carries a **disk-bytes-per-commit
//! series** (`disk_bytes_per_commit_w0..`): on-disk growth per commit
//! sampled across a growing-set load. Under delta storage each commit
//! pays one O(delta) record plus an amortized 1/K share of a snapshot,
//! so the series climbs with state size K× more slowly than
//! full-snapshot-per-commit storage would.
//!
//! The two hard gates hold regardless of any baseline: they are
//! absolute properties of the engine, not regression checks. On top of
//! that, `--baseline <path>` applies the usual contract shared with the
//! other bench bins: compare every metric when the file exists (exit 1
//! on a > `--tolerance` regression, default 0.25), else write the file
//! so the first CI run establishes the baseline.
//!
//! Run: `cargo run --release -p peepul-bench --bin bench_sustained -- \
//!           --out BENCH_sustained.json --baseline BENCH_sustained.baseline.json`

use peepul_store::{BranchStore, FlushPolicy, SegmentBackend, SegmentOptions};
use peepul_types::counter::{Counter, CounterOp};
use peepul_types::or_set_space::{OrSetOp, OrSetSpace};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Direction of improvement for a metric.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Better {
    Higher,
    Lower,
}

struct Metric {
    name: &'static str,
    value: f64,
    better: Better,
}

fn quick_mode(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
        || std::env::var("PEEPUL_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "peepul-bench-sustained-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Durable, with a rotation cap small enough that every run rolls the
/// active segment several times — rotation cost is part of the number.
fn opts(flush: FlushPolicy) -> SegmentOptions {
    SegmentOptions {
        durable: true,
        flush,
        max_segment_bytes: 256 * 1024,
        ..SegmentOptions::default()
    }
}

/// Drives `commits` single-op counter commits on one branch with a
/// durability point every `batch` commits. The counter's tiny state
/// keeps the CPU side of a commit small, so the measurement isolates
/// the durability cost the batch size controls. Returns `(secs,
/// fsyncs)`.
fn write_load(dir: &Path, commits: u32, batch: u32) -> (f64, u64) {
    let flush = if batch == 1 {
        FlushPolicy::PerCommit
    } else {
        FlushPolicy::Explicit
    };
    let backend = SegmentBackend::open_with(dir, opts(flush)).expect("open segment");
    let mut db: BranchStore<Counter, _> =
        BranchStore::with_backend("main", backend).expect("create store");
    let fsyncs_at_start = db.backend().fsync_count();
    let start = Instant::now();
    for i in 0..commits {
        db.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        if batch > 1 && (i + 1) % batch == 0 {
            db.flush().unwrap();
        }
    }
    db.flush().unwrap();
    let secs = start.elapsed().as_secs_f64();
    (secs, db.backend().fsync_count() - fsyncs_at_start)
}

/// Builds a history where roughly half of all commits end up stranded
/// (scratch branches repointed back to their fork base), runs GC +
/// compaction, and returns `(disk_bytes, live_bytes, dead_objects)`.
/// The run reports into `obs` (GC sweep stats, compaction bytes, fsync
/// counts), so the final JSON carries the shared observability snapshot.
fn gc_amplification(obs: &peepul_obs::Obs, dir: &Path, commits: u32) -> (u64, u64, u64) {
    let backend =
        SegmentBackend::open_with(dir, opts(FlushPolicy::Explicit)).expect("open segment");
    let mut db: BranchStore<OrSetSpace<u64>, _> =
        BranchStore::with_backend("main", backend).expect("create store");
    db.set_metrics(peepul_store::StoreMetrics::attach(obs));
    for i in 0..commits {
        db.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(u64::from(i) % 512))
            .unwrap();
        // Every other commit, strand a one-commit scratch branch: real
        // garbage for the tracer, the way rejected pushes or abandoned
        // work leave it behind.
        if i % 2 == 0 {
            let name = format!("scratch{i}");
            db.branch_mut("main").unwrap().fork(&name).unwrap();
            db.branch_mut(&name)
                .unwrap()
                .apply(&OrSetOp::Add(u64::from(i) + 1_000_000))
                .unwrap();
            let base = db.head_id("main").unwrap();
            db.force_track(&name, base).unwrap();
        }
    }
    let stats = db.collect_garbage().expect("collect garbage");
    db.flush().unwrap();
    db.publish_gauges();
    (
        db.backend().disk_bytes(),
        stats.live_bytes,
        stats.dead_objects,
    )
}

/// The O(delta) *disk* claim: drives `commits` growing-set commits
/// through a durable, delta-storing segment store and samples on-disk
/// bytes at `points` evenly spaced checkpoints. Returns the per-window
/// disk bytes per commit. Each commit appends one O(delta) record plus
/// an amortized 1/K share of a full snapshot, so the series climbs
/// K× more slowly with state size than full-snapshot-per-commit
/// storage would (where every window pays `window × |state|`).
fn disk_growth(dir: &Path, commits: u32, points: u32) -> Vec<f64> {
    let backend =
        SegmentBackend::open_with(dir, opts(FlushPolicy::Explicit)).expect("open segment");
    let mut db: BranchStore<OrSetSpace<u64>, _> =
        BranchStore::with_backend("main", backend).expect("create store");
    let window = (commits / points).max(1);
    let mut series = Vec::new();
    let mut last = db.backend().disk_bytes();
    for i in 0..commits {
        db.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(u64::from(i)))
            .unwrap();
        if (i + 1) % window == 0 {
            db.flush().unwrap();
            let now = db.backend().disk_bytes();
            series.push((now - last) as f64 / f64::from(window));
            last = now;
        }
    }
    series
}

/// Renders the report as JSON (hand-rolled: the workspace deliberately
/// has no serde; EXPERIMENTS.md documents this schema).
fn render_json(metrics: &[Metric], quick: bool, info: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"peepul/bench-sustained/v1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"metrics\": {{");
    for (i, m) in metrics.iter().enumerate() {
        let better = match m.better {
            Better::Higher => "higher",
            Better::Lower => "lower",
        };
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"value\": {:.6}, \"better\": \"{better}\" }}{comma}",
            m.name, m.value
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"info\": {{");
    for (i, (name, value)) in info.iter().enumerate() {
        let comma = if i + 1 < info.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{name}\": {value:.6}{comma}");
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

/// Extracts `"name": { "value": <f64>` from a report produced by
/// `render_json` (tolerant scan, not a general JSON parser).
fn baseline_value(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\"");
    let after_key = &json[json.find(&key)? + key.len()..];
    let after_value = &after_key[after_key.find("\"value\":")? + "\"value\":".len()..];
    let num: String = after_value
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = quick_mode(&args);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_sustained.json".into());
    let baseline_path = flag_value(&args, "--baseline");
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.25);

    let (commits, gc_commits) = if quick { (1_024, 400) } else { (4_096, 2_000) };
    println!(
        "# bench_sustained ({} mode)",
        if quick { "quick" } else { "full" }
    );

    let mut throughput = Vec::new(); // (batch, commits/s, fsyncs/commit)
    for batch in [1u32, 16, 128] {
        let dir = scratch(&format!("batch-{batch}"));
        let (secs, fsyncs) = write_load(&dir, commits, batch);
        let cps = f64::from(commits) / secs;
        let fpc = fsyncs as f64 / f64::from(commits);
        println!(
            "batch {batch:>3}             : {cps:>10.0} commits/s, {fpc:.3} fsyncs/commit \
             ({commits} commits in {:.2}s)",
            secs
        );
        throughput.push((batch, cps, fpc));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let speedup = throughput[2].1 / throughput[0].1;
    println!("group commit speedup  : {speedup:.2}x (batch 128 vs batch 1)");

    let obs = peepul_obs::Obs::new(peepul_obs::ObsConfig::default());
    let dir = scratch("gc");
    let (disk_bytes, live_bytes, dead_objects) = gc_amplification(&obs, &dir, gc_commits);
    let amplification = disk_bytes as f64 / live_bytes as f64;
    println!(
        "post-GC amplification : {amplification:.3} ({disk_bytes} disk bytes / {live_bytes} live \
         bytes, {dead_objects} objects collected)"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let growth_dir = scratch("growth");
    let growth = disk_growth(&growth_dir, gc_commits, 8);
    let _ = std::fs::remove_dir_all(&growth_dir);
    let growth_avg = growth.iter().sum::<f64>() / growth.len().max(1) as f64;
    println!(
        "disk bytes per commit : {growth_avg:.0} avg, series [{}]",
        growth
            .iter()
            .map(|v| format!("{v:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let metrics = [
        Metric {
            name: "sustained_commits_per_sec_batch1",
            value: throughput[0].1,
            better: Better::Higher,
        },
        Metric {
            name: "sustained_commits_per_sec_batch16",
            value: throughput[1].1,
            better: Better::Higher,
        },
        Metric {
            name: "sustained_commits_per_sec_batch128",
            value: throughput[2].1,
            better: Better::Higher,
        },
        Metric {
            name: "fsyncs_per_commit_batch1",
            value: throughput[0].2,
            better: Better::Lower,
        },
        Metric {
            name: "group_commit_speedup",
            value: speedup,
            better: Better::Higher,
        },
        Metric {
            name: "post_gc_disk_amplification",
            value: amplification,
            better: Better::Lower,
        },
    ];
    let info: Vec<(String, f64)> = vec![
        ("commits_per_run".into(), f64::from(commits)),
        ("gc_run_commits".into(), f64::from(gc_commits)),
        ("gc_dead_objects".into(), dead_objects as f64),
        ("gc_disk_bytes".into(), disk_bytes as f64),
        ("gc_live_bytes".into(), live_bytes as f64),
        ("fsyncs_per_commit_batch16".into(), throughput[1].2),
        ("fsyncs_per_commit_batch128".into(), throughput[2].2),
    ];
    let mut info = info;
    info.push(("disk_bytes_per_commit_avg".into(), growth_avg));
    for (i, v) in growth.iter().enumerate() {
        info.push((format!("disk_bytes_per_commit_w{i}"), *v));
    }

    let json = peepul_bench::with_obs_section(&render_json(&metrics, quick, &info), &obs);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Absolute gates first: these are engine properties, not regressions,
    // so they hold even on the baseline-establishing first run.
    let mut failed = false;
    if speedup < 5.0 {
        eprintln!("FAIL: group commit speedup {speedup:.2}x is below the 5.0x floor");
        failed = true;
    }
    if amplification >= 2.0 {
        eprintln!("FAIL: post-GC disk amplification {amplification:.3} is not below 2.0");
        failed = true;
    }

    if let Some(baseline_path) = baseline_path {
        match std::fs::read_to_string(&baseline_path) {
            Err(_) => {
                // First run: establish the baseline (CI commits this file).
                std::fs::write(&baseline_path, &json).expect("write baseline");
                println!("no baseline found; wrote initial baseline to {baseline_path}");
            }
            Ok(baseline) => {
                // Only gate against a baseline recorded in the same mode.
                let baseline_quick = baseline.contains("\"quick\": true");
                if baseline_quick != quick {
                    println!(
                        "baseline at {baseline_path} was recorded in {} mode, this run is {} mode — skipping the regression gate",
                        if baseline_quick { "quick" } else { "full" },
                        if quick { "quick" } else { "full" },
                    );
                } else {
                    for m in &metrics {
                        let Some(base) = baseline_value(&baseline, m.name) else {
                            println!("baseline lacks {} — skipping", m.name);
                            continue;
                        };
                        let (bad, ratio) = match m.better {
                            Better::Higher => (
                                m.value < base * (1.0 - tolerance),
                                m.value / base.max(f64::MIN_POSITIVE),
                            ),
                            Better::Lower => (
                                m.value > base * (1.0 + tolerance),
                                base / m.value.max(f64::MIN_POSITIVE),
                            ),
                        };
                        println!(
                            "{:<36} {:>14.3} vs baseline {:>14.3}  ({:.2}x) {}",
                            m.name,
                            m.value,
                            base,
                            ratio,
                            if bad { "REGRESSED" } else { "ok" }
                        );
                        if bad {
                            eprintln!(
                                "FAIL: {} regressed more than {:.0}% vs baseline",
                                m.name,
                                tolerance * 100.0
                            );
                            failed = true;
                        }
                    }
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

//! **Sync benchmark** — the replication half of the CI perf gate.
//!
//! Measures the three `peepul-net` metrics the ROADMAP's scaling goals
//! track, and writes them as machine-readable JSON (`BENCH_sync.json` at
//! the repo root in CI):
//!
//! * `sync_objects_per_sec` — verified objects (commits + states) ingested
//!   per second when a cold replica fetches a deep history over a
//!   `ChannelTransport` (higher is better);
//! * `round_trips_per_fetch` — transport round trips one cold fetch needs;
//!   the want/have negotiation answers the whole missing subgraph from the
//!   Merkle structure, so this is 3 regardless of history depth (lower);
//! * `partition_heal_convergence_ms` — wall time for an 8-replica fleet
//!   that diverged under a partition to converge after heal via
//!   anti-entropy (lower);
//! * `delta_ratio` — state bytes a cold chat-log fetch moves with delta
//!   sync divided by the same fetch against a full-snapshot origin
//!   (lower; **hard gate `< 0.5`** — the O(delta) transfer claim).
//!
//! With `--baseline <path>`: if the file exists, each metric is compared
//! against it and the run **fails (exit 1) when any metric regresses by
//! more than `--tolerance`** (default 0.25); if it does not exist, the
//! current numbers are written there so the first CI run establishes the
//! baseline. Same contract as `bench_store`.
//!
//! Run: `cargo run --release -p peepul-bench --bin bench_sync -- \
//!           --out BENCH_sync.json --baseline BENCH_sync.baseline.json`

use peepul_net::{AntiEntropy, ChannelTransport, Cluster, Remote, Replica};
use peepul_store::{BranchStore, MemoryBackend};
use peepul_types::counter::CounterOp;
use peepul_types::log::{LogOp, MergeableLog};
use peepul_types::or_set_space::{OrSetOp, OrSetSpace};
use std::fmt::Write as _;
use std::time::Instant;

/// Direction of improvement for a metric.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Better {
    Higher,
    Lower,
}

struct Metric {
    name: &'static str,
    value: f64,
    better: Better,
}

fn quick_mode(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
        || std::env::var("PEEPUL_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// A server replica holding a `commits`-deep OR-set history.
fn deep_history(commits: u32) -> Replica<OrSetSpace<u64>, MemoryBackend> {
    let mut store: BranchStore<OrSetSpace<u64>> = BranchStore::new("main");
    {
        let mut main = store.branch_mut("main").unwrap();
        for i in 0..commits {
            main.apply(&OrSetOp::Add(u64::from(i) % 512)).unwrap();
        }
    }
    Replica::new("origin", store)
}

/// Cold-fetch throughput: a fresh replica downloads the whole history.
/// Returns `(objects_per_sec, round_trips, objects)` averaged over
/// `reps` fresh clients. Each client reports into `obs`, so the final
/// JSON carries the net-side observability snapshot of the run.
fn fetch_throughput(obs: &peepul_obs::Obs, commits: u32, reps: u32) -> (f64, f64, u64) {
    let origin = deep_history(commits);
    let mut total_objects = 0u64;
    let mut total_rts = 0u64;
    let mut total_secs = 0f64;
    for rep in 0..reps {
        let client: Replica<OrSetSpace<u64>, MemoryBackend> = Replica::new(
            format!("client-{rep}"),
            BranchStore::with_backend_and_base("main", MemoryBackend::new(), (rep + 1) << 16)
                .unwrap(),
        );
        client.set_net_metrics(peepul_net::NetMetrics::attach(obs));
        client.with_store(|s| s.set_metrics(peepul_store::StoreMetrics::attach(obs)));
        let mut remote = Remote::new("origin", ChannelTransport::connect(origin.clone()));
        let start = Instant::now();
        let stats = client.fetch(&mut remote, "main").unwrap();
        total_secs += start.elapsed().as_secs_f64();
        total_objects += stats.objects_received();
        total_rts += stats.round_trips;
    }
    (
        total_objects as f64 / total_secs,
        total_rts as f64 / f64::from(reps),
        total_objects / u64::from(reps),
    )
}

/// A chat-log origin: `commits` appends of a ~40-byte message each,
/// stored with the given snapshot interval (`0` = every state full).
fn log_history(commits: u32, interval: u32) -> Replica<MergeableLog<String>, MemoryBackend> {
    let mut store: BranchStore<MergeableLog<String>> =
        BranchStore::with_backend("main", MemoryBackend::with_snapshot_interval(interval)).unwrap();
    {
        let mut main = store.branch_mut("main").unwrap();
        for i in 0..commits {
            main.apply(&LogOp::Append(format!(
                "chat message number {i:08} from origin"
            )))
            .unwrap();
        }
    }
    Replica::new("origin", store)
}

/// The O(delta) transfer measurement: a cold replica fetches the same
/// `commits`-deep chat log twice — once from a full-snapshot origin
/// (`snapshot_interval = 0`, every state ships as its full canonical
/// bytes) and once from a delta-storing origin (the default interval).
/// Returns `(bytes_per_op_full, bytes_per_op_delta, delta_states)`;
/// `delta_ratio` — the CI gate — is the quotient of the first two.
fn log_fetch_bytes(commits: u32) -> (f64, f64, u64) {
    let fetched = |interval: u32| {
        let origin = log_history(commits, interval);
        let client: Replica<MergeableLog<String>, MemoryBackend> = Replica::new(
            "client",
            BranchStore::with_backend_and_base("main", MemoryBackend::new(), 1 << 16).unwrap(),
        );
        let mut remote = Remote::new("origin", ChannelTransport::connect(origin));
        client.fetch(&mut remote, "main").unwrap()
    };
    let full = fetched(0);
    let delta = fetched(peepul_store::DEFAULT_SNAPSHOT_INTERVAL);
    assert_eq!(
        full.delta_states_received, 0,
        "interval 0 must disable deltas"
    );
    (
        full.state_bytes_received as f64 / f64::from(commits),
        delta.state_bytes_received as f64 / f64::from(commits),
        delta.delta_states_received,
    )
}

/// The 8-replica partition-heal scenario: half the fleet is cut off while
/// everyone increments, then the partition heals and anti-entropy repairs
/// it. Returns `(convergence_ms, rounds, objects_moved)`.
fn partition_heal(ops: usize) -> (f64, u64, u64) {
    let cluster: Cluster<peepul_types::counter::Counter> = Cluster::new(8).unwrap();
    for i in [1usize, 3, 5, 7] {
        cluster.faults(i).unwrap().partition();
    }
    cluster.run(ops, 4, |_, _| CounterOp::Increment).unwrap();
    for i in [1usize, 3, 5, 7] {
        cluster.faults(i).unwrap().heal();
    }
    let nodes: Vec<_> = (0..8).map(|i| cluster.node(i).unwrap().clone()).collect();
    let start = Instant::now();
    let report = AntiEntropy::new().run(&nodes, "main").unwrap();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(report.converged, "heal must converge: {report:?}");
    let expected = (8 * ops) as u64;
    let count = nodes[0]
        .read("main", &peepul_types::counter::CounterQuery::Value)
        .unwrap();
    assert_eq!(count, expected, "no increment lost under partition+heal");
    (ms, report.rounds, report.objects_transferred)
}

/// Renders the report as JSON (hand-rolled: the workspace deliberately
/// has no serde; EXPERIMENTS.md documents this schema).
fn render_json(metrics: &[Metric], quick: bool, info: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"peepul/bench-sync/v1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"metrics\": {{");
    for (i, m) in metrics.iter().enumerate() {
        let better = match m.better {
            Better::Higher => "higher",
            Better::Lower => "lower",
        };
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"value\": {:.6}, \"better\": \"{better}\" }}{comma}",
            m.name, m.value
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"info\": {{");
    for (i, (name, value)) in info.iter().enumerate() {
        let comma = if i + 1 < info.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{name}\": {value:.6}{comma}");
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

/// Extracts `"name": { "value": <f64>` from a report produced by
/// `render_json` (tolerant scan, not a general JSON parser).
fn baseline_value(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\"");
    let after_key = &json[json.find(&key)? + key.len()..];
    let after_value = &after_key[after_key.find("\"value\":")? + "\"value\":".len()..];
    let num: String = after_value
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = quick_mode(&args);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_sync.json".into());
    let baseline_path = flag_value(&args, "--baseline");
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.25);

    // Quick mode still runs long enough to average out scheduler noise on
    // shared CI runners — the timing metrics are gated at ±25%.
    let (commits, reps, heal_ops) = if quick { (400, 3, 24) } else { (1_500, 5, 60) };

    println!(
        "# bench_sync ({} mode)",
        if quick { "quick" } else { "full" }
    );
    let obs = peepul_obs::Obs::new(peepul_obs::ObsConfig::default());
    let (objects_per_sec, rts_per_fetch, objects_per_fetch) = fetch_throughput(&obs, commits, reps);
    println!(
        "cold fetch            : {objects_per_sec:.0} objects/s \
         ({objects_per_fetch} objects, {rts_per_fetch:.1} round trips)"
    );
    let (heal_ms, heal_rounds, heal_objects) = partition_heal(heal_ops);
    println!(
        "8-replica heal        : {heal_ms:.1} ms to converge \
         ({heal_rounds} rounds, {heal_objects} objects)"
    );
    let log_commits = if quick { 300 } else { 1_000 };
    let (bytes_full, bytes_delta, delta_states) = log_fetch_bytes(log_commits);
    let delta_ratio = bytes_delta / bytes_full.max(f64::MIN_POSITIVE);
    println!(
        "chat-log cold fetch   : {bytes_delta:.0} bytes/op delta vs {bytes_full:.0} bytes/op full \
         (ratio {delta_ratio:.3}, {delta_states} delta states)"
    );

    let metrics = [
        Metric {
            name: "sync_objects_per_sec",
            value: objects_per_sec,
            better: Better::Higher,
        },
        Metric {
            name: "round_trips_per_fetch",
            value: rts_per_fetch,
            better: Better::Lower,
        },
        Metric {
            name: "partition_heal_convergence_ms",
            value: heal_ms,
            better: Better::Lower,
        },
        Metric {
            name: "delta_ratio",
            value: delta_ratio,
            better: Better::Lower,
        },
    ];
    let info = [
        ("objects_per_cold_fetch", objects_per_fetch as f64),
        ("heal_rounds", heal_rounds as f64),
        ("heal_objects_transferred", heal_objects as f64),
        ("log_bytes_per_op_full", bytes_full),
        ("log_bytes_per_op_delta", bytes_delta),
        ("log_delta_states", delta_states as f64),
    ];

    let json = peepul_bench::with_obs_section(&render_json(&metrics, quick, &info), &obs);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Hard functional gate: negotiation must stay O(1) round trips — depth
    // independence is the whole point of the Merkle want/have exchange.
    if rts_per_fetch > 3.0 {
        eprintln!("FAIL: a cold fetch used {rts_per_fetch} round trips (expected 3)");
        std::process::exit(1);
    }
    // Hard transfer gate: delta sync must at least halve the state bytes a
    // chat-log fetch moves — the O(delta) claim, not a timing, so it gets
    // an absolute threshold rather than the baseline tolerance.
    if delta_ratio >= 0.5 {
        eprintln!("FAIL: delta_ratio {delta_ratio:.3} >= 0.5 — delta sync is not saving bytes");
        std::process::exit(1);
    }

    let Some(baseline_path) = baseline_path else {
        return;
    };
    match std::fs::read_to_string(&baseline_path) {
        Err(_) => {
            // First run: establish the baseline (CI commits this file).
            std::fs::write(&baseline_path, &json).expect("write baseline");
            println!("no baseline found; wrote initial baseline to {baseline_path}");
        }
        Ok(baseline) => {
            // Quick and full mode run different workload sizes; comparing
            // across modes would flag spurious "regressions". Only gate
            // against a baseline recorded in the same mode.
            let baseline_quick = baseline.contains("\"quick\": true");
            if baseline_quick != quick {
                println!(
                    "baseline at {baseline_path} was recorded in {} mode, this run is {} mode — skipping the regression gate",
                    if baseline_quick { "quick" } else { "full" },
                    if quick { "quick" } else { "full" },
                );
                return;
            }
            let mut regressed = false;
            for m in &metrics {
                let Some(base) = baseline_value(&baseline, m.name) else {
                    println!("baseline lacks {} — skipping", m.name);
                    continue;
                };
                let (bad, ratio) = match m.better {
                    Better::Higher => (
                        m.value < base * (1.0 - tolerance),
                        m.value / base.max(f64::MIN_POSITIVE),
                    ),
                    Better::Lower => (
                        m.value > base * (1.0 + tolerance),
                        base / m.value.max(f64::MIN_POSITIVE),
                    ),
                };
                println!(
                    "{:<32} {:>14.3} vs baseline {:>14.3}  ({:.2}x) {}",
                    m.name,
                    m.value,
                    base,
                    ratio,
                    if bad { "REGRESSED" } else { "ok" }
                );
                regressed |= bad;
            }
            if regressed {
                eprintln!(
                    "FAIL: sync metric regressed more than {:.0}% vs baseline",
                    tolerance * 100.0
                );
                std::process::exit(1);
            }
        }
    }
}

//! **Store benchmark** — the CI perf gate's data source.
//!
//! Measures the three store-level metrics the ROADMAP's "hot path
//! measurably faster" goal tracks, and writes them as machine-readable
//! JSON (`BENCH_store.json` at the repo root in CI):
//!
//! * `merge_throughput_per_sec` — full `BranchStore::merge` round-trips
//!   per second on a two-branch gossip workload (higher is better);
//! * `lca_ns` — merge-base search time on a criss-cross DAG (lower);
//! * `merge_cache_hit_rate` — fraction of three-way merges answered by
//!   the memo on the criss-cross probe workload (higher; the CI gate
//!   requires it to be strictly positive).
//!
//! With `--baseline <path>`: if the file exists, each metric is compared
//! against it and the run **fails (exit 1) when any metric regresses by
//! more than `--tolerance`** (default 0.25); if it does not exist, the
//! current numbers are written there so the first CI run establishes the
//! baseline.
//!
//! Run: `cargo run --release -p peepul-bench --bin bench_store -- \
//!           --out BENCH_store.json --baseline BENCH_store.baseline.json`

use peepul_store::{BranchStore, MemoryBackend};
use peepul_types::or_set_space::{OrSetOp, OrSetSpace};
use std::fmt::Write as _;
use std::time::Instant;

/// Direction of improvement for a metric.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Better {
    Higher,
    Lower,
}

struct Metric {
    name: &'static str,
    value: f64,
    better: Better,
}

fn quick_mode(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
        || std::env::var("PEEPUL_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Two-branch gossip: `rounds` rounds of (5 ops per side, merge both
/// ways). Returns merges per second. Reports into `obs` so the final
/// JSON carries the shared observability snapshot of the run.
fn merge_throughput(obs: &peepul_obs::Obs, rounds: u32) -> f64 {
    let mut s: BranchStore<OrSetSpace<u64>> = BranchStore::new("a");
    s.set_metrics(peepul_store::StoreMetrics::attach(obs));
    s.branch_mut("a").unwrap().fork("b").unwrap();
    let mut merges = 0u64;
    let start = Instant::now();
    for r in 0..rounds {
        for k in 0..5u32 {
            let v = u64::from(r * 5 + k) % 512;
            s.branch_mut("a").unwrap().apply(&OrSetOp::Add(v)).unwrap();
            s.branch_mut("b")
                .unwrap()
                .apply(&OrSetOp::Add(v + 512))
                .unwrap();
        }
        s.branch_mut("a").unwrap().merge_from("b").unwrap();
        s.branch_mut("b").unwrap().merge_from("a").unwrap();
        merges += 2;
    }
    let rate = merges as f64 / start.elapsed().as_secs_f64();
    s.publish_gauges();
    rate
}

/// Builds a criss-cross store (two maximal merge bases between `x` and
/// `y2`) with `n` adds per phase and `probes` probe branches off `x`.
fn criss_cross_store(n: u32, probes: u32) -> BranchStore<OrSetSpace<u64>, MemoryBackend> {
    let mut s: BranchStore<OrSetSpace<u64>> = BranchStore::new("x");
    // Consecutive ops on one branch reuse one handle: the measured work is
    // merging, not handle lookups.
    {
        let mut x = s.branch_mut("x").unwrap();
        for i in 0..n {
            x.apply(&OrSetOp::Add(u64::from(i))).unwrap();
        }
        x.fork("y").unwrap();
        for i in 0..n {
            x.apply(&OrSetOp::Add(u64::from(10_000 + i))).unwrap();
        }
    }
    {
        let mut y = s.branch_mut("y").unwrap();
        for i in 0..n {
            y.apply(&OrSetOp::Add(u64::from(20_000 + i))).unwrap();
        }
    }
    s.branch_mut("x").unwrap().fork("x-pin").unwrap();
    s.branch_mut("y").unwrap().fork("y2").unwrap();
    s.branch_mut("x").unwrap().merge_from("y").unwrap();
    s.branch_mut("y2").unwrap().merge_from("x-pin").unwrap();
    s.branch_mut("x")
        .unwrap()
        .apply(&OrSetOp::Add(99_999))
        .unwrap();
    s.branch_mut("y2")
        .unwrap()
        .apply(&OrSetOp::Add(99_998))
        .unwrap();
    for p in 0..probes {
        s.branch_mut("x")
            .unwrap()
            .fork(format!("probe-{p}"))
            .unwrap();
    }
    s
}

/// Average nanoseconds per merge-base search on the criss-cross heads.
fn lca_ns(n: u32, iters: u32) -> f64 {
    let s = criss_cross_store(n, 0);
    let (hx, hy) = (s.head("x").unwrap(), s.head("y2").unwrap());
    assert_eq!(
        s.graph().merge_bases(hx, hy).len(),
        2,
        "workload must criss-cross"
    );
    let start = Instant::now();
    let mut found = 0usize;
    for _ in 0..iters {
        found += std::hint::black_box(s.graph().merge_bases(hx, hy)).len();
    }
    assert_eq!(found, 2 * iters as usize);
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// The criss-cross probe workload: each probe branch merges `y2`,
/// re-deriving the identical virtual base merge. Returns
/// `(hit_rate, hits, misses, elapsed_secs)` for `cached` on/off.
fn probe_workload(n: u32, probes: u32, cached: bool) -> (f64, u64, u64, f64) {
    let mut s = criss_cross_store(n, probes);
    s.set_merge_cache(cached);
    let start = Instant::now();
    for p in 0..probes {
        s.branch_mut(&format!("probe-{p}"))
            .unwrap()
            .merge_from("y2")
            .unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = s.merge_cache_stats();
    (stats.hit_rate(), stats.hits, stats.misses, elapsed)
}

/// Renders the report as JSON (hand-rolled: the workspace deliberately
/// has no serde; EXPERIMENTS.md documents this schema).
fn render_json(metrics: &[Metric], quick: bool, info: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"peepul/bench-store/v1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"metrics\": {{");
    for (i, m) in metrics.iter().enumerate() {
        let better = match m.better {
            Better::Higher => "higher",
            Better::Lower => "lower",
        };
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"value\": {:.6}, \"better\": \"{better}\" }}{comma}",
            m.name, m.value
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"info\": {{");
    for (i, (name, value)) in info.iter().enumerate() {
        let comma = if i + 1 < info.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{name}\": {value:.6}{comma}");
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

/// Extracts `"name": { "value": <f64>` from a report produced by
/// `render_json` (tolerant scan, not a general JSON parser).
fn baseline_value(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\"");
    let after_key = &json[json.find(&key)? + key.len()..];
    let after_value = &after_key[after_key.find("\"value\":")? + "\"value\":".len()..];
    let num: String = after_value
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = quick_mode(&args);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_store.json".into());
    let baseline_path = flag_value(&args, "--baseline");
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.25);

    // Quick mode still runs long enough to average out scheduler noise on
    // shared CI runners — the timing metrics are gated at ±25%.
    let (rounds, lca_n, lca_iters, probes) = if quick {
        (300, 150, 400, 8)
    } else {
        (1_000, 400, 2_000, 8)
    };

    println!(
        "# bench_store ({} mode)",
        if quick { "quick" } else { "full" }
    );
    let obs = peepul_obs::Obs::new(peepul_obs::ObsConfig::default());
    let throughput = merge_throughput(&obs, rounds);
    println!("merge throughput      : {throughput:.0} merges/s ({rounds} rounds)");
    let lca = lca_ns(lca_n, lca_iters);
    println!("LCA (criss-cross)     : {lca:.0} ns/search");
    let (hit_rate, hits, misses, cached_secs) = probe_workload(lca_n, probes, true);
    let (_, _, _, uncached_secs) = probe_workload(lca_n, probes, false);
    let speedup = if cached_secs > 0.0 {
        uncached_secs / cached_secs
    } else {
        1.0
    };
    println!(
        "merge cache           : {hits} hits / {misses} misses (rate {hit_rate:.2}), probe speedup {speedup:.2}x"
    );

    let metrics = [
        Metric {
            name: "merge_throughput_per_sec",
            value: throughput,
            better: Better::Higher,
        },
        Metric {
            name: "lca_ns",
            value: lca,
            better: Better::Lower,
        },
        Metric {
            name: "merge_cache_hit_rate",
            value: hit_rate,
            better: Better::Higher,
        },
    ];
    let info = [
        ("merge_cache_hits", hits as f64),
        ("merge_cache_misses", misses as f64),
        ("memo_probe_speedup", speedup),
    ];

    let json = peepul_bench::with_obs_section(&render_json(&metrics, quick, &info), &obs);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Hard functional gate: the criss-cross workload must exercise the
    // merge cache at all — a 0% hit rate means the memo layer is broken.
    if hit_rate <= 0.0 {
        eprintln!("FAIL: merge cache hit rate is 0 on the criss-cross workload");
        std::process::exit(1);
    }

    let Some(baseline_path) = baseline_path else {
        return;
    };
    match std::fs::read_to_string(&baseline_path) {
        Err(_) => {
            // First run: establish the baseline (CI commits this file).
            std::fs::write(&baseline_path, &json).expect("write baseline");
            println!("no baseline found; wrote initial baseline to {baseline_path}");
        }
        Ok(baseline) => {
            // Quick and full mode run different workload sizes; comparing
            // across modes would flag spurious "regressions". Only gate
            // against a baseline recorded in the same mode.
            let baseline_quick = baseline.contains("\"quick\": true");
            if baseline_quick != quick {
                println!(
                    "baseline at {baseline_path} was recorded in {} mode, this run is {} mode — skipping the regression gate",
                    if baseline_quick { "quick" } else { "full" },
                    if quick { "quick" } else { "full" },
                );
                return;
            }
            let mut regressed = false;
            for m in &metrics {
                let Some(base) = baseline_value(&baseline, m.name) else {
                    println!("baseline lacks {} — skipping", m.name);
                    continue;
                };
                let (bad, verdict) = match m.better {
                    Better::Higher => (
                        m.value < base * (1.0 - tolerance),
                        m.value / base.max(f64::MIN_POSITIVE),
                    ),
                    Better::Lower => (
                        m.value > base * (1.0 + tolerance),
                        base / m.value.max(f64::MIN_POSITIVE),
                    ),
                };
                println!(
                    "{:<26} current {:>12.2}  baseline {:>12.2}  ratio {:.2} {}",
                    m.name,
                    m.value,
                    base,
                    verdict,
                    if bad { "REGRESSED" } else { "ok" }
                );
                regressed |= bad;
            }
            if regressed {
                eprintln!(
                    "FAIL: at least one metric regressed more than {:.0}% vs {baseline_path}",
                    tolerance * 100.0
                );
                std::process::exit(1);
            }
        }
    }
}

//! **Figure 12** — merge performance of Peepul vs Quark queues.
//!
//! Protocol (paper §7.2.1): starting from an empty queue, perform `n`
//! random operations (75:25 enqueue:dequeue) to build the LCA, diverge two
//! versions with further random operations, then time a single three-way
//! merge. Peepul's merge is linear; Quark reifies the `O(len²)` ordering
//! relation and re-linearises it.
//!
//! Run: `cargo run --release -p peepul-bench --bin fig12 [max_n]`
//! (default sweep 1000..=5000 step 500, as in the paper).

use peepul_bench::{queue_session, time_once};
use peepul_core::Mrdt;
use peepul_quark::QuarkQueue;
use peepul_types::queue::Queue;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5000);
    println!("# Figure 12: queue merge time, Peepul vs Quark");
    println!("# n = operations building the session (75% enqueue / 25% dequeue)");
    println!(
        "{:>8} {:>10} {:>16} {:>16} {:>10}",
        "n", "queue_len", "peepul_merge_s", "quark_merge_s", "speedup"
    );
    let mut n = 1000;
    while n <= max_n {
        let seed = 0x51_2E + n as u64;
        let (pl, pa, pb) = queue_session::<Queue<u64>>(n, seed);
        let (ql, qa, qb) = queue_session::<QuarkQueue<u64>>(n, seed);
        debug_assert_eq!(pl.to_list(), ql.to_list());

        let (peepul_t, pm) = time_once(|| Queue::merge(&pl, &pa, &pb));
        let (quark_t, qm) = time_once(|| QuarkQueue::merge(&ql, &qa, &qb));
        assert_eq!(pm.to_list(), qm.to_list(), "merges must agree");

        println!(
            "{:>8} {:>10} {:>16.6} {:>16.6} {:>9.0}x",
            n,
            pm.len(),
            peepul_t.as_secs_f64(),
            quark_t.as_secs_f64(),
            quark_t.as_secs_f64() / peepul_t.as_secs_f64().max(1e-9)
        );
        n += 500;
    }
    println!("# Expected shape: Quark grows superlinearly (O(len²) relation),");
    println!("# Peepul stays ~linear and several orders of magnitude faster.");
}

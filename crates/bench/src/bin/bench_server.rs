//! **Service benchmark** — the daemon half of the CI perf gate.
//!
//! Spins up one in-process `peepul-server` (memory backend — the bench
//! measures the service and socket path, not fsync) and hammers it with
//! real `ServiceClient` connections over loopback TCP at three
//! concurrency levels, measuring what the service layer promises:
//!
//! * `server_rps_1conn` / `server_rps_8conn` / `server_rps_32conn` —
//!   request/response round trips per second sustained at 1, 8 and 32
//!   concurrent connections (higher is better; the 8- and 32-connection
//!   numbers exercise the shared read lock and the connection cap);
//! * `server_get_p50_us` / `server_get_p99_us` — per-request latency
//!   percentiles of the commit-free `get` path at 8 connections (lower).
//!
//! The workload is 1 put per 16 gets per connection: mostly the
//! concurrent read path, with enough writes that the exclusive lock is
//! genuinely contended. The run **fails** if the server never served 8
//! connections at once — the concurrency claim of the service layer,
//! checked functionally, not statistically.
//!
//! With `--baseline <path>`: same contract as `bench_sync` — compare and
//! fail on >`--tolerance` regressions when the file exists, write it when
//! it does not (the first CI run on main establishes it).
//!
//! Run: `cargo run --release -p peepul-bench --bin bench_server -- \
//!           --out BENCH_server.json --baseline BENCH_server.baseline.json`

use peepul_server::{Server, ServerConfig, ServiceClient};
use peepul_store::MemoryBackend;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::Instant;

/// Direction of improvement for a metric.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Better {
    Higher,
    Lower,
}

struct Metric {
    name: &'static str,
    value: f64,
    better: Better,
}

fn quick_mode(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
        || std::env::var("PEEPUL_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Drives `conns` concurrent client connections for `requests_per_conn`
/// requests each (1 put per 16 gets), returning
/// `(requests_per_sec, sorted get latencies in µs)`.
fn hammer(addr: SocketAddr, conns: usize, requests_per_conn: usize) -> (f64, Vec<f64>) {
    let start = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(requests_per_conn);
                for i in 0..requests_per_conn {
                    let key = format!("k{}", i % 64);
                    if i % 16 == 0 {
                        client.put("main", &key, format!("c{c}-{i}")).expect("put");
                    } else {
                        let t0 = Instant::now();
                        let _ = client.get("main", &key).expect("get");
                        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for w in workers {
        latencies.extend(w.join().expect("worker"));
    }
    let secs = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ((conns * requests_per_conn) as f64 / secs, latencies)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Renders the report as JSON (hand-rolled: the workspace deliberately
/// has no serde; EXPERIMENTS.md documents this schema).
fn render_json(metrics: &[Metric], quick: bool, info: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"peepul/bench-server/v1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"metrics\": {{");
    for (i, m) in metrics.iter().enumerate() {
        let better = match m.better {
            Better::Higher => "higher",
            Better::Lower => "lower",
        };
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"value\": {:.6}, \"better\": \"{better}\" }}{comma}",
            m.name, m.value
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"info\": {{");
    for (i, (name, value)) in info.iter().enumerate() {
        let comma = if i + 1 < info.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{name}\": {value:.6}{comma}");
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

/// Extracts `"name": { "value": <f64>` from a report produced by
/// `render_json` (tolerant scan, not a general JSON parser).
fn baseline_value(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\"");
    let after_key = &json[json.find(&key)? + key.len()..];
    let after_value = &after_key[after_key.find("\"value\":")? + "\"value\":".len()..];
    let num: String = after_value
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = quick_mode(&args);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_server.json".into());
    let baseline_path = flag_value(&args, "--baseline");
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.25);

    let requests_per_conn = if quick { 400 } else { 2_000 };

    println!(
        "# bench_server ({} mode)",
        if quick { "quick" } else { "full" }
    );
    let server = Server::spawn(
        ServerConfig::new("bench"),
        "127.0.0.1:0",
        MemoryBackend::new(),
    )
    .expect("spawn server");
    let addr = server.addr();

    // Seed the working set so gets hit existing keys from the start.
    let mut seeder = ServiceClient::connect(addr).expect("connect");
    for i in 0..64 {
        seeder.put("main", format!("k{i}"), "seed").expect("seed");
    }
    drop(seeder);

    let (rps_1, _) = hammer(addr, 1, requests_per_conn);
    println!("1 connection          : {rps_1:.0} req/s");
    let (rps_8, lat_8) = hammer(addr, 8, requests_per_conn);
    let p50 = percentile(&lat_8, 0.50);
    let p99 = percentile(&lat_8, 0.99);
    println!("8 connections         : {rps_8:.0} req/s (get p50 {p50:.1} µs, p99 {p99:.1} µs)");
    let (rps_32, _) = hammer(addr, 32, requests_per_conn);
    println!("32 connections        : {rps_32:.0} req/s");

    let peak = server.peak_connections();
    println!("peak concurrent conns : {peak}");

    let metrics = [
        Metric {
            name: "server_rps_1conn",
            value: rps_1,
            better: Better::Higher,
        },
        Metric {
            name: "server_rps_8conn",
            value: rps_8,
            better: Better::Higher,
        },
        Metric {
            name: "server_rps_32conn",
            value: rps_32,
            better: Better::Higher,
        },
        Metric {
            name: "server_get_p50_us",
            value: p50,
            better: Better::Lower,
        },
        Metric {
            name: "server_get_p99_us",
            value: p99,
            better: Better::Lower,
        },
    ];
    let info = [
        ("peak_connections", peak as f64),
        ("requests_per_conn", requests_per_conn as f64),
        ("frames_served", server.frames_served() as f64),
    ];

    // One Metrics round-trip publishes the server's pull-model gauges, so
    // the spliced obs section reflects the full hammer run.
    ServiceClient::connect(addr)
        .and_then(|mut c| c.metrics())
        .expect("metrics round-trip");
    let json = peepul_bench::with_obs_section(&render_json(&metrics, quick, &info), server.obs());
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Hard functional gate: the service layer claims real connection
    // concurrency — the 8- and 32-connection phases must actually have
    // been served concurrently, not serialized by the accept loop.
    if peak < 8 {
        eprintln!("FAIL: server peaked at {peak} concurrent connections (expected >= 8)");
        std::process::exit(1);
    }

    let Some(baseline_path) = baseline_path else {
        return;
    };
    match std::fs::read_to_string(&baseline_path) {
        Err(_) => {
            // First run: establish the baseline (CI commits this file).
            std::fs::write(&baseline_path, &json).expect("write baseline");
            println!("no baseline found; wrote initial baseline to {baseline_path}");
        }
        Ok(baseline) => {
            // Quick and full mode run different workload sizes; only gate
            // against a baseline recorded in the same mode.
            let baseline_quick = baseline.contains("\"quick\": true");
            if baseline_quick != quick {
                println!(
                    "baseline at {baseline_path} was recorded in {} mode, this run is {} mode — skipping the regression gate",
                    if baseline_quick { "quick" } else { "full" },
                    if quick { "quick" } else { "full" },
                );
                return;
            }
            let mut regressed = false;
            for m in &metrics {
                let Some(base) = baseline_value(&baseline, m.name) else {
                    println!("baseline lacks {} — skipping", m.name);
                    continue;
                };
                let (bad, ratio) = match m.better {
                    Better::Higher => (
                        m.value < base * (1.0 - tolerance),
                        m.value / base.max(f64::MIN_POSITIVE),
                    ),
                    Better::Lower => (
                        m.value > base * (1.0 + tolerance),
                        base / m.value.max(f64::MIN_POSITIVE),
                    ),
                };
                println!(
                    "{:<32} {:>14.3} vs baseline {:>14.3}  ({:.2}x) {}",
                    m.name,
                    m.value,
                    base,
                    ratio,
                    if bad { "REGRESSED" } else { "ok" }
                );
                regressed |= bad;
            }
            if regressed {
                eprintln!(
                    "FAIL: server metric regressed more than {:.0}% vs baseline",
                    tolerance * 100.0
                );
                std::process::exit(1);
            }
        }
    }
}

//! **Certification report** — machine-readable summary of the replication
//! certification run: the per-type `Φ_ra` fleet suites, the replication
//! mutant kill-gate, and the codec mutant kill-gate (round-trip and
//! delta-resolution laws).
//!
//! Writes `VERIFY_report.json` (schema `peepul/verify-report/v1`, see
//! EXPERIMENTS.md) and exits non-zero when any suite fails **or any mutant
//! survives** — CI's hard gate on the replication layer.
//!
//! Run: `cargo run --release -p peepul-bench --bin verify_report`
//! (`--quick` for a smaller fleet shape, `--out PATH` to redirect).

use std::fmt::Write as _;

use peepul_verify::{
    certify_replication, run_codec_mutants, run_replication_mutants, RaLinSuiteConfig,
};

fn quick_mode(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
        || std::env::var("PEEPUL_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Minimal JSON string escaping for failure/counterexample text.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = quick_mode(&args);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "VERIFY_report.json".into());

    let config = if quick {
        RaLinSuiteConfig {
            runs: 2,
            replicas: 4,
            ops_per_replica: 6,
            gossip_every: 2,
            ..RaLinSuiteConfig::default()
        }
    } else {
        RaLinSuiteConfig::default()
    };

    println!(
        "Φ_ra suites: {} runs × {} replicas × {} ops each{}",
        config.runs,
        config.replicas,
        config.ops_per_replica,
        if quick { " (quick)" } else { "" }
    );
    let suites = certify_replication(&config);
    for s in &suites {
        println!(
            "  {:<22} {:>3} runs  {:>5} events  {:>6} linearization checks  {}{}",
            s.name,
            s.runs,
            s.stats.events,
            s.stats.linearizations,
            if s.passed() { "ok" } else { "FAILED" },
            if s.structural { " (structural)" } else { "" },
        );
        if let Some(f) = &s.failure {
            println!("    {f}");
        }
    }

    println!("replication mutant kill-gate:");
    let mutants = run_replication_mutants();
    for m in &mutants {
        let name = m.mutation.to_string();
        println!(
            "  {:<24} baseline {}  converged {}  {}",
            name,
            if m.baseline_ok { "ok" } else { "FAILED" },
            if m.converged { "yes" } else { "no" },
            if m.caught() { "KILLED" } else { "SURVIVED" },
        );
    }

    println!("codec mutant kill-gate:");
    let codec_mutants = run_codec_mutants();
    for m in &codec_mutants {
        println!(
            "  {:<24} baseline {}  {}",
            m.mutation,
            if m.baseline_ok { "ok" } else { "FAILED" },
            if m.caught() { "KILLED" } else { "SURVIVED" },
        );
    }

    let histories: u64 = suites.iter().map(|s| s.runs).sum();
    let events: u64 = suites.iter().map(|s| s.stats.events).sum();
    let linearizations: u64 = suites.iter().map(|s| s.stats.linearizations).sum();
    let killed = mutants.iter().filter(|m| m.caught()).count();
    let codec_killed = codec_mutants.iter().filter(|m| m.caught()).count();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"peepul/verify-report/v1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"fleet\": {{ \"runs\": {}, \"replicas\": {}, \"ops_per_replica\": {}, \
         \"gossip_every\": {}, \"loss_per_mille\": {}, \"partition_one\": {} }},",
        config.runs,
        config.replicas,
        config.ops_per_replica,
        config.gossip_every,
        config.loss_per_mille,
        config.partition_one
    );
    let _ = writeln!(out, "  \"suites\": [");
    for (i, s) in suites.iter().enumerate() {
        let comma = if i + 1 == suites.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{}\", \"runs\": {}, \"events\": {}, \"records\": {}, \
             \"observations\": {}, \"linearizations\": {}, \"structural\": {}, \
             \"passed\": {}, \"seconds\": {:.3}, \"failure\": {} }}{comma}",
            json_escape(s.name),
            s.runs,
            s.stats.events,
            s.stats.records,
            s.stats.observations,
            s.stats.linearizations,
            s.structural,
            s.passed(),
            s.time.as_secs_f64(),
            match &s.failure {
                Some(f) => format!("\"{}\"", json_escape(f)),
                None => "null".into(),
            },
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"mutants\": [");
    for (i, m) in mutants.iter().enumerate() {
        let comma = if i + 1 == mutants.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"mutation\": \"{}\", \"baseline_ok\": {}, \"converged\": {}, \
             \"killed\": {}, \"detail\": \"{}\" }}{comma}",
            m.mutation,
            m.baseline_ok,
            m.converged,
            m.killed,
            json_escape(&m.detail),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"codec_mutants\": [");
    for (i, m) in codec_mutants.iter().enumerate() {
        let comma = if i + 1 == codec_mutants.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    {{ \"mutation\": \"{}\", \"baseline_ok\": {}, \"killed\": {}, \
             \"detail\": \"{}\" }}{comma}",
            m.mutation,
            m.baseline_ok,
            m.killed,
            json_escape(&m.detail),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"totals\": {{ \"histories_checked\": {histories}, \"events_witnessed\": {events}, \
         \"linearization_checks\": {linearizations}, \"mutants_killed\": {killed}, \
         \"mutants_total\": {}, \"codec_mutants_killed\": {codec_killed}, \
         \"codec_mutants_total\": {} }}",
        mutants.len(),
        codec_mutants.len()
    );
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write report");
    println!("wrote {out_path}");

    let suites_ok = suites.iter().all(|s| s.passed());
    let mutants_ok = killed == mutants.len();
    let codec_ok = codec_killed == codec_mutants.len();
    if !suites_ok || !mutants_ok || !codec_ok {
        if !suites_ok {
            eprintln!("FAIL: a Φ_ra suite rejected a healthy fleet execution");
        }
        if !mutants_ok {
            eprintln!(
                "FAIL: {}/{} replication mutants survived Φ_ra",
                mutants.len() - killed,
                mutants.len()
            );
        }
        if !codec_ok {
            eprintln!(
                "FAIL: {}/{} codec mutants survived Φ_codec",
                codec_mutants.len() - codec_killed,
                codec_mutants.len()
            );
        }
        std::process::exit(1);
    }
    println!(
        "ok: {histories} histories, {events} events, {linearizations} linearization checks, \
         {killed}/{} replication mutants + {codec_killed}/{} codec mutants killed",
        mutants.len(),
        codec_mutants.len()
    );
}

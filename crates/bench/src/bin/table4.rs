//! **Table 4** — certification cost vs exploration depth: this workspace's
//! analogue of the paper's verification-time comparison.
//!
//! The paper's Table 4 compares F*/Z3 verification times of Peepul's
//! efficient implementations against Quark-style reified-relation proofs.
//! The executable-certification analogue measures how the cost of the
//! harness itself scales: for a representative sample of data types, run
//! the bounded-exhaustive pass at increasing depth bounds and report the
//! executions explored, transitions taken, obligation instances checked
//! and wall-clock time per depth. This is the table that justifies the
//! PR-gate/nightly split in CI: depth 4 is cheap enough to run on every
//! push, depth 5+ is nightly territory (see EXPERIMENTS.md).
//!
//! Run: `cargo run --release -p peepul-bench --bin table4 [max_depth]`
//! (default max depth 5).

use peepul_core::Certified;
use peepul_types::counter::{Counter, CounterOp, CounterQuery};
use peepul_types::ew_flag::{EwFlag, EwFlagOp, EwFlagQuery};
use peepul_types::or_set::{OrSet, OrSetOp, OrSetQuery};
use peepul_types::or_set_space::OrSetSpace;
use peepul_types::queue::{Queue, QueueOp, QueueQuery};
use peepul_verify::bounded::{BoundedChecker, BoundedConfig};
use peepul_verify::runner::MergePolicy;
use std::time::Instant;

struct Row {
    name: &'static str,
    depth: usize,
    executions: u64,
    transitions: u64,
    obligations: u64,
    seconds: f64,
}

fn depth_sweep<M: Certified>(
    name: &'static str,
    policy: MergePolicy,
    alphabet: Vec<M::Op>,
    queries: Vec<M::Query>,
    depths: std::ops::RangeInclusive<usize>,
    rows: &mut Vec<Row>,
) where
    M::Op: PartialEq,
{
    for depth in depths {
        let start = Instant::now();
        let stats = BoundedChecker::<M>::new(BoundedConfig {
            max_steps: depth,
            max_branches: 2,
            alphabet: alphabet.clone(),
            queries: queries.clone(),
        })
        .with_policy(policy)
        .run()
        .unwrap_or_else(|e| panic!("{name} fails certification at depth {depth}: {e}"));
        rows.push(Row {
            name,
            depth,
            executions: stats.executions,
            transitions: stats.transitions,
            obligations: stats.obligations.total(),
            seconds: start.elapsed().as_secs_f64(),
        });
    }
}

fn main() {
    let max_depth: usize = match std::env::args().nth(1) {
        None => 5,
        Some(raw) => match raw.parse() {
            Ok(d) if d >= 3 => d,
            _ => {
                eprintln!("usage: table4 [max_depth >= 3] — got {raw:?}");
                std::process::exit(2);
            }
        },
    };
    let depths = 3..=max_depth;
    let mut rows = Vec::new();

    depth_sweep::<Counter>(
        "Increment-only counter",
        MergePolicy::General,
        vec![CounterOp::Increment],
        vec![CounterQuery::Value],
        depths.clone(),
        &mut rows,
    );
    depth_sweep::<EwFlag>(
        "Enable-wins flag",
        MergePolicy::General,
        vec![EwFlagOp::Enable, EwFlagOp::Disable],
        vec![EwFlagQuery::Read],
        depths.clone(),
        &mut rows,
    );
    depth_sweep::<OrSet<u32>>(
        "OR-set",
        MergePolicy::General,
        vec![OrSetOp::Add(1), OrSetOp::Remove(1)],
        vec![OrSetQuery::Lookup(1)],
        depths.clone(),
        &mut rows,
    );
    depth_sweep::<OrSetSpace<u32>>(
        "OR-set-space",
        MergePolicy::PaperEnvelope,
        vec![OrSetOp::Add(1), OrSetOp::Remove(1)],
        vec![OrSetQuery::Lookup(1)],
        depths.clone(),
        &mut rows,
    );
    depth_sweep::<Queue<u32>>(
        "Replicated queue",
        MergePolicy::General,
        vec![QueueOp::Enqueue(1), QueueOp::Dequeue],
        vec![QueueQuery::Peek],
        depths.clone(),
        &mut rows,
    );

    println!("# Table 4 analogue: bounded-exhaustive certification cost vs depth");
    println!(
        "{:<26} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "MRDT", "depth", "executions", "transitions", "obligations", "time (s)"
    );
    println!("{}", "-".repeat(84));
    for r in &rows {
        println!(
            "{:<26} {:>6} {:>12} {:>12} {:>12} {:>10.3}",
            r.name, r.depth, r.executions, r.transitions, r.obligations, r.seconds
        );
    }
    println!("{}", "-".repeat(84));
    assert!(
        !rows.is_empty(),
        "empty depth sweep — nothing was certified"
    );
    println!("# All certifications PASS (a violated obligation aborts this binary).");
    println!("# The growth justifies the CI split: shallow bounds on every push,");
    println!("# deeper bounds nightly (see .github/workflows/nightly.yml).");
}

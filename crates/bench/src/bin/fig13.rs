//! **Figure 13** — OR-set size, Peepul vs Quark, under a 50:50 add:remove
//! workload with values drawn from `0..1000`.
//!
//! Protocol (paper §7.2.1): `n/2` operations build the LCA, `n/4` more on
//! each branch, one merge; report the final number of stored pairs
//! *including duplicates*. Quark's relationally-derived interface cannot
//! coalesce or bulk-remove duplicate `(element, id)` pairs, so its
//! footprint grows with the operation count (a reflected random walk per
//! element — the paper's "non-linear" growth); Peepul's space-efficient
//! OR-set stays bounded by the value range.
//!
//! Run: `cargo run --release -p peepul-bench --bin fig13 [max_n]`
//! (default sweep 10000..=100000 step 10000, as in the paper).

use peepul_bench::orset_session;
use peepul_core::Mrdt;
use peepul_quark::QuarkOrSet;
use peepul_types::or_set_space::OrSetSpace;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    println!("# Figure 13: final OR-set size (pairs incl. duplicates), Peepul vs Quark");
    println!(
        "{:>8} {:>14} {:>14} {:>8}",
        "n_ops", "quark_size", "peepul_size", "ratio"
    );
    let mut n = 10_000;
    while n <= max_n {
        let seed = 0xF163 + n as u64;
        let (ql, qa, qb) = orset_session::<QuarkOrSet<u64>>(n, seed);
        let (pl, pa, pb) = orset_session::<OrSetSpace<u64>>(n, seed);
        let quark = QuarkOrSet::merge(&ql, &qa, &qb);
        let peepul = OrSetSpace::merge(&pl, &pa, &pb);
        assert!(
            peepul.pair_count() <= 1000,
            "Peepul is bounded by the range"
        );
        println!(
            "{:>8} {:>14} {:>14} {:>7.1}x",
            n,
            quark.pair_count(),
            peepul.pair_count(),
            quark.pair_count() as f64 / peepul.pair_count().max(1) as f64
        );
        n += 10_000;
    }
    println!("# Expected shape: Quark grows with n (duplicates unremovable),");
    println!("# Peepul stays below 1000 (the value range) throughout.");
}

//! **Figure 15** — space consumption of the three Peepul OR-set variants
//! under the Fig. 14 workload (maximum footprint observed, in KB).
//!
//! In the paper the OR-set-space and OR-set-spacetime lines coincide (both
//! duplicate-free); the unoptimized OR-set sits above them and grows with
//! its duplicates.
//!
//! Run: `cargo run --release -p peepul-bench --bin fig15 [max_ops]`

use peepul_bench::orset_workload;
use peepul_types::or_set::OrSet;
use peepul_types::or_set_space::OrSetSpace;
use peepul_types::or_set_spacetime::OrSetSpacetime;

fn main() {
    let max_ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    println!("# Figure 15: OR-set max space (KB) — same workload as Figure 14");
    println!(
        "{:>8} {:>12} {:>15} {:>19}",
        "n_ops", "or_set_kb", "or_set_space_kb", "or_set_spacetime_kb"
    );
    let mut n = 5_000;
    while n <= max_ops {
        let seed = 0xF164 + n as u64; // same seed as fig14: same workload
        let plain = orset_workload::<OrSet<u64>>(n, seed);
        let space = orset_workload::<OrSetSpace<u64>>(n, seed);
        let spacetime = orset_workload::<OrSetSpacetime<u64>>(n, seed);
        let kb = |b: usize| b as f64 / 1024.0;
        println!(
            "{:>8} {:>12.2} {:>15.2} {:>19.2}",
            n,
            kb(plain.max_bytes),
            kb(space.max_bytes),
            kb(spacetime.max_bytes),
        );
        n += 5_000;
    }
    println!("# Expected shape: duplicate-free variants stay flat (bounded by the");
    println!("# value range); the unoptimized OR-set sits above and keeps growing.");
}

//! **Table 3** — certification effort per MRDT: this workspace's analogue
//! of the paper's verification-effort table.
//!
//! The paper reports, per data type: lines of implementation, lines of
//! proof, number of auxiliary lemmas, and F*/Z3 verification time. The
//! executable-certification analogue reports: lines of implementation
//! (including the specification and simulation relation — the "proof
//! text" of this methodology), the number of proof-obligation instances
//! checked, the number of executions explored exhaustively, and the
//! certification wall-clock time.
//!
//! Run: `cargo run --release -p peepul-bench --bin table3`

use peepul_verify::suite::{certify_all, SuiteConfig};
use peepul_verify::{MergePolicy, RandomConfig};

/// Source text of each data type module, captured at compile time so the
/// line accounting can never drift from the code being certified.
const SOURCES: &[(&str, &str)] = &[
    (
        "Increment-only counter",
        include_str!("../../../types/src/counter.rs"),
    ),
    (
        "PN counter",
        include_str!("../../../types/src/pn_counter.rs"),
    ),
    (
        "Enable-wins flag",
        include_str!("../../../types/src/ew_flag.rs"),
    ),
    (
        "Enable-wins flag (space)",
        include_str!("../../../types/src/ew_flag.rs"),
    ),
    (
        "LWW register",
        include_str!("../../../types/src/lww_register.rs"),
    ),
    ("G-set", include_str!("../../../types/src/g_set.rs")),
    (
        "G-map (α-map of counters)",
        include_str!("../../../types/src/map.rs"),
    ),
    ("Mergeable log", include_str!("../../../types/src/log.rs")),
    ("OR-set", include_str!("../../../types/src/or_set.rs")),
    (
        "OR-set-space",
        include_str!("../../../types/src/or_set_space.rs"),
    ),
    (
        "OR-set-spacetime",
        include_str!("../../../types/src/or_set_spacetime.rs"),
    ),
    (
        "Replicated queue",
        include_str!("../../../types/src/queue.rs"),
    ),
    (
        "IRC chat (map of logs)",
        include_str!("../../../types/src/chat.rs"),
    ),
];

/// Counts non-blank, non-test lines of a module (tests are effort too, but
/// the paper's "lines of code" excludes its test harness).
fn loc(source: &str) -> usize {
    let mut lines = 0;
    for line in source.lines() {
        if line.contains("#[cfg(test)]") {
            break; // test module is always last, by convention
        }
        if !line.trim().is_empty() {
            lines += 1;
        }
    }
    lines
}

fn main() {
    let config = SuiteConfig {
        bounded_steps: 4,
        bounded_branches: 2,
        random_runs: 20,
        random: RandomConfig {
            steps: 150,
            max_branches: 4,
            ..RandomConfig::default()
        },
    };
    println!("# Table 3 analogue: certification effort per MRDT");
    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>12} {:>10} {:>9} {:>8}",
        "MRDT",
        "LoC",
        "exhaustive",
        "transitions",
        "obligations",
        "time (s)",
        "envelope",
        "verdict"
    );
    println!("{}", "-".repeat(104));
    let mut failures = 0;
    for s in certify_all(&config) {
        let lines = SOURCES
            .iter()
            .find(|(n, _)| *n == s.name)
            .map(|(_, src)| loc(src))
            .unwrap_or(0);
        println!(
            "{:<28} {:>6} {:>12} {:>12} {:>12} {:>10.3} {:>9} {:>8}",
            s.name,
            lines,
            s.bounded_executions,
            s.bounded_transitions + s.random_transitions,
            s.obligations.total(),
            s.total_time().as_secs_f64(),
            match s.policy {
                MergePolicy::General => "general",
                MergePolicy::PaperEnvelope => "paper",
            },
            if s.passed() { "PASS" } else { "FAIL" }
        );
        if let Some(f) = &s.failure {
            failures += 1;
            println!("    counterexample: {f}");
        }
    }
    println!("{}", "-".repeat(104));
    println!("# LoC = non-blank, non-test lines of the module, *including* its");
    println!("# specification and simulation relation (the 'proof text' here).");
    println!("# envelope 'paper' = certified relative to the paper's strong Ψ_lca");
    println!("# store assumption (see DESIGN.md §9.1).");
    if failures > 0 {
        std::process::exit(1);
    }
}

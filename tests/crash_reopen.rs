//! Crash-reopen torture for the on-disk segment backend — at the byte
//! level **and** at the typed level.
//!
//! The backend's durability contract is write → fsync → publish: once a
//! `put`/`set_ref` returns, a crash must not lose it. We simulate a crash
//! mid-write by truncating the segment file at **every possible offset**
//! inside the final record and at arbitrary earlier tail offsets, then
//! reopen and assert that every record fully written before the
//! truncation point is intact and integrity-checked.
//!
//! Since the codec unification the same torture runs one layer up:
//! `BranchStore::open` must rebuild **typed** state from whatever prefix
//! survived — heads, commit graph, Lamport clock and query answers all
//! equal to the last fully published state before the cut
//! (`typed_reopen_at_every_truncation_point_serves_the_published_prefix`).

mod common;

use common::Scratch;
use peepul::prelude::*;
use peepul::store::segment::CompactionFault;
use peepul::store::{Backend, ObjectId, SegmentBackend, SegmentOptions};
use peepul::types::counter::{Counter, CounterOp, CounterQuery};
use peepul::types::or_set_space::{OrSetOp, OrSetQuery, OrSetSpace};

fn quick() -> SegmentOptions {
    SegmentOptions {
        durable: false,
        ..SegmentOptions::default()
    }
}

/// `quick()` with a tiny rotation cap, so a handful of puts spreads the
/// store across several segments.
fn tiny_segments() -> SegmentOptions {
    SegmentOptions {
        durable: false,
        max_segment_bytes: 256,
        ..SegmentOptions::default()
    }
}

/// Writes `count` objects one at a time, recording the active-segment
/// length after each publish. Returns `(ids, lengths)` with `lengths[i]`
/// = bytes in the active segment once object `i` was published.
fn publish_objects(dir: &std::path::Path, count: usize) -> (Vec<ObjectId>, Vec<u64>) {
    let mut backend = SegmentBackend::open_with(dir, quick()).unwrap();
    let active = backend.active_path();
    let mut ids = Vec::new();
    let mut lengths = Vec::new();
    for i in 0..count {
        let payload = format!("object payload number {i}, padded {}", "x".repeat(i * 7));
        ids.push(backend.put(payload.as_bytes()).unwrap());
        lengths.push(std::fs::metadata(&active).unwrap().len());
    }
    (ids, lengths)
}

/// The single data segment of a fresh `quick()` store — the rotation cap
/// is far above what these sessions write, so nothing ever rotates.
fn active_file(dir: &std::path::Path) -> std::path::PathBuf {
    dir.join("segment-0000.seg")
}

fn truncate(file: &std::path::Path, len: u64) {
    std::fs::OpenOptions::new()
        .write(true)
        .open(file)
        .unwrap()
        .set_len(len)
        .unwrap();
}

#[test]
fn every_truncation_point_preserves_published_records() {
    let scratch = Scratch::new("crash-every-offset");
    let dir = scratch.path().join("db");
    let (ids, lengths) = publish_objects(&dir, 6);
    let file = active_file(&dir);
    let full = *lengths.last().unwrap();

    // Walk backwards over every byte of the file, killing the tail there.
    for cut in (9..=full).rev() {
        truncate(&file, cut);
        let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
        for (i, id) in ids.iter().enumerate() {
            if lengths[i] <= cut {
                // Fully written before the crash point: must be intact…
                let bytes = backend
                    .get(*id)
                    .unwrap_or_else(|e| panic!("cut {cut}, object {i}: {e}"))
                    .unwrap_or_else(|| panic!("cut {cut}: object {i} lost"));
                assert_eq!(
                    ObjectId::from_bytes(peepul::store::sha256::Sha256::digest(&bytes)),
                    *id
                );
            } else {
                // …anything torn is dropped, never served corrupt.
                assert!(backend.get(*id).unwrap().is_none(), "cut {cut}, object {i}");
            }
        }
    }
}

#[test]
fn reopen_after_crash_continues_the_log() {
    let scratch = Scratch::new("crash-continue");
    let dir = scratch.path().join("db");
    let (ids, lengths) = publish_objects(&dir, 4);
    let file = active_file(&dir);

    // Crash in the middle of object 3's record.
    truncate(&file, lengths[2] + (lengths[3] - lengths[2]) / 2);

    // The reopened backend recovers 0..=2, drops 3, and keeps appending.
    let mut backend = SegmentBackend::open_with(&dir, quick()).unwrap();
    assert_eq!(backend.object_count(), 3);
    assert!(!backend.contains(ids[3]).unwrap());
    let replacement = backend.put(b"written by the restarted process").unwrap();
    drop(backend);

    let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
    for id in &ids[..3] {
        assert!(backend.contains(*id).unwrap());
    }
    assert!(backend.contains(replacement).unwrap());
}

#[test]
fn typed_reopen_at_every_truncation_point_serves_the_published_prefix() {
    let scratch = Scratch::new("typed-reopen-every-offset");
    let dir = scratch.path().join("db");
    let file = active_file(&dir);

    // Build a session one publish at a time, recording after each apply
    // the on-disk length, the head commit id, and the expected count —
    // the "last published prefix" ground truth for every cut point.
    let mut checkpoints: Vec<(u64, ObjectId, u64)> = Vec::new();
    {
        let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
        let mut db: BranchStore<Counter, _> = BranchStore::with_backend("main", backend).unwrap();
        checkpoints.push((
            std::fs::metadata(&file).unwrap().len(),
            db.head_id("main").unwrap(),
            0,
        ));
        for i in 1..=6u64 {
            db.branch_mut("main")
                .unwrap()
                .apply(&CounterOp::Increment)
                .unwrap();
            checkpoints.push((
                std::fs::metadata(&file).unwrap().len(),
                db.head_id("main").unwrap(),
                i,
            ));
        }
    }
    let base = checkpoints.first().unwrap().0;
    let full = checkpoints.last().unwrap().0;

    // Kill the tail at every byte offset and reopen **as typed state**:
    // the recovered head commit, query answer and Lamport clock must be
    // exactly those of the longest fully-published prefix.
    for cut in (base..=full).rev() {
        truncate(&file, cut);
        let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
        let db: BranchStore<Counter, _> =
            BranchStore::open(backend).unwrap_or_else(|e| panic!("cut {cut}: open failed: {e}"));
        let (_, head, count) = checkpoints
            .iter()
            .rev()
            .find(|(len, _, _)| *len <= cut)
            .expect("the root publish is below every cut");
        assert_eq!(db.head_id("main").unwrap(), *head, "cut {cut}: head");
        assert_eq!(
            db.read("main", &CounterQuery::Value).unwrap(),
            *count,
            "cut {cut}: typed query"
        );
        assert_eq!(db.tick(), *count, "cut {cut}: Lamport clock");
    }
}

#[test]
fn typed_reopen_at_every_offset_inside_delta_and_snapshot_records() {
    let scratch = Scratch::new("typed-reopen-delta-offsets");
    let dir = scratch.path().join("db");
    let file = active_file(&dir);

    // Snapshot every 3 commits: a chat-log session (each append grows
    // the state by a fat message, so the delta record is always the
    // smaller encoding) then writes both O(delta) state records and
    // periodic full snapshots, and the truncation sweep below cuts
    // through every byte of both kinds.
    let opts = || SegmentOptions {
        durable: false,
        snapshot_interval: 3,
        ..SegmentOptions::default()
    };
    type Log = peepul::types::log::MergeableLog<String>;
    let query = peepul::types::log::LogQuery::Read;
    let mut checkpoints: Vec<(u64, ObjectId, usize, u64)> = Vec::new();
    {
        let backend = SegmentBackend::open_with(&dir, opts()).unwrap();
        let mut db: BranchStore<Log, _> = BranchStore::with_backend("main", backend).unwrap();
        let mut deltas = 0;
        for i in 0..8u32 {
            db.branch_mut("main")
                .unwrap()
                .apply(&peepul::types::log::LogOp::Append(format!(
                    "chat message number {i}, padded {}",
                    "x".repeat(40)
                )))
                .unwrap();
            checkpoints.push((
                std::fs::metadata(&file).unwrap().len(),
                db.head_id("main").unwrap(),
                db.read("main", &query).unwrap().len(),
                db.tick(),
            ));
            if db
                .state_stored_delta(db.state_id("main").unwrap())
                .unwrap()
                .is_some()
            {
                deltas += 1;
            }
        }
        assert!(deltas >= 4, "the session must actually store deltas");
        assert!(deltas < 8, "interval 3 must force periodic snapshots");
    }
    let base = checkpoints.first().unwrap().0;
    let full = checkpoints.last().unwrap().0;

    // Kill the tail at every byte offset — inside delta records and
    // snapshot records alike — and reopen as typed state: the recovered
    // head, elements and clock are exactly those of the longest fully
    // published prefix, and every surviving state's record chain still
    // resolves from disk.
    for cut in (base..=full).rev() {
        truncate(&file, cut);
        let backend = SegmentBackend::open_with(&dir, opts()).unwrap();
        let db: BranchStore<Log, _> =
            BranchStore::open(backend).unwrap_or_else(|e| panic!("cut {cut}: open failed: {e}"));
        let (_, head, len, tick) = checkpoints
            .iter()
            .rev()
            .find(|(l, _, _, _)| *l <= cut)
            .expect("the root publish is below every cut");
        assert_eq!(db.head_id("main").unwrap(), *head, "cut {cut}: head");
        assert_eq!(
            db.read("main", &query).unwrap().len(),
            *len,
            "cut {cut}: typed query"
        );
        assert_eq!(db.tick(), *tick, "cut {cut}: Lamport clock");
        for c in db.commits_between(&[*head], &[]) {
            let oid = db.state_oid(c);
            assert!(
                db.state_bytes(oid).unwrap().is_some(),
                "cut {cut}: surviving state {oid:?} must resolve"
            );
        }
    }
}

#[test]
fn typed_reopen_recovers_multi_branch_stores_after_a_torn_tail() {
    let scratch = Scratch::new("typed-reopen-branches");
    let dir = scratch.path().join("db");

    // A multi-branch OR-set session, recording what each head looked like
    // the moment it was published (head commit id → elements).
    let mut published: Vec<(ObjectId, Vec<u32>)> = Vec::new();
    {
        let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
        let mut db: BranchStore<OrSetSpace<u32>, _> =
            BranchStore::with_backend("main", backend).unwrap();
        let snap = |db: &BranchStore<OrSetSpace<u32>, SegmentBackend>, b: &str| {
            let peepul::types::or_set_space::OrSetOutput::Elements(e) =
                db.read(b, &OrSetQuery::Read).unwrap()
            else {
                panic!("read returns elements")
            };
            (db.head_id(b).unwrap(), e)
        };
        published.push(snap(&db, "main"));
        db.branch_mut("main").unwrap().fork("dev").unwrap();
        for i in 0..4 {
            db.branch_mut("main")
                .unwrap()
                .apply(&OrSetOp::Add(i))
                .unwrap();
            published.push(snap(&db, "main"));
            db.branch_mut("dev")
                .unwrap()
                .apply(&OrSetOp::Add(i + 100))
                .unwrap();
            published.push(snap(&db, "dev"));
        }
        db.branch_mut("main").unwrap().merge_from("dev").unwrap();
        published.push(snap(&db, "main"));
    }

    // Crash mid-record, then reopen as typed state. Whatever head each
    // surviving ref points at, the typed store must answer queries exactly
    // as it did when that head was live.
    let file = active_file(&dir);
    truncate(&file, std::fs::metadata(&file).unwrap().len() - 5);
    let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
    let db: BranchStore<OrSetSpace<u32>, _> = BranchStore::open(backend).unwrap();
    assert!(!db.branch_names().is_empty());
    for b in db.branch_names() {
        let head = db.head_id(b).unwrap();
        let expected = published
            .iter()
            .find(|(h, _)| *h == head)
            .unwrap_or_else(|| panic!("{b}: recovered head {} was never published", head.short()));
        let peepul::types::or_set_space::OrSetOutput::Elements(e) =
            db.read(b, &OrSetQuery::Read).unwrap()
        else {
            panic!("read returns elements")
        };
        assert_eq!(e, expected.1, "{b}: typed state matches publish-time");
    }
}

#[test]
fn branch_store_heads_survive_crash_reopen() {
    let scratch = Scratch::new("crash-store");
    let dir = scratch.path().join("db");

    // A full store session: commits and ref updates interleaved.
    let (heads, seg_len) = {
        let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
        let mut db: BranchStore<Counter, _> = BranchStore::with_backend("main", backend).unwrap();
        db.branch_mut("main").unwrap().fork("dev").unwrap();
        for _ in 0..5 {
            db.branch_mut("main")
                .unwrap()
                .apply(&CounterOp::Increment)
                .unwrap();
            db.branch_mut("dev")
                .unwrap()
                .apply(&CounterOp::Increment)
                .unwrap();
        }
        db.branch_mut("main").unwrap().merge_from("dev").unwrap();
        (db.backend().refs().unwrap(), db.backend().disk_bytes())
    };

    // Crash: tear off the last 5 bytes (mid-record), then reopen.
    let file = active_file(&dir);
    truncate(&file, std::fs::metadata(&file).unwrap().len() - 5);
    let reopened = SegmentBackend::open_with(&dir, quick()).unwrap();

    // The torn record was the *only* loss: every published commit — in
    // particular every branch head the refs point at — is intact.
    for (branch, head) in &heads {
        // The last ref write may itself have been the torn record; if the
        // ref survived, the commit it points at must be retrievable.
        if let Some(id) = reopened.get_ref(branch).unwrap() {
            assert!(
                reopened.get(id).unwrap().is_some(),
                "{branch}: surviving ref points at a lost commit"
            );
            if id == *head {
                assert!(reopened.get(*head).unwrap().is_some());
            }
        }
    }
    assert!(reopened.disk_bytes() <= seg_len);
    assert!(reopened.object_count() > 0);
}

/// Drives a typed session across several tiny segments and returns the
/// ground truth a crash-recovery must reproduce: per-branch head ids and
/// counter values, plus the store tick.
type SessionTruth = (Vec<(String, ObjectId, u64)>, u64);

fn multi_segment_session(dir: &std::path::Path) -> BranchStore<Counter, SegmentBackend> {
    let backend = SegmentBackend::open_with(dir, tiny_segments()).unwrap();
    let mut db: BranchStore<Counter, _> = BranchStore::with_backend("main", backend).unwrap();
    db.branch_mut("main").unwrap().fork("dev").unwrap();
    for _ in 0..8 {
        db.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        db.branch_mut("dev")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
    }
    db.branch_mut("main").unwrap().merge_from("dev").unwrap();
    assert!(
        db.backend().file_names().len() > 2,
        "the session must span several segments: {:?}",
        db.backend().file_names()
    );
    db
}

fn truth_of(db: &BranchStore<Counter, SegmentBackend>) -> SessionTruth {
    let branches = db
        .branch_names()
        .iter()
        .map(|b| {
            (
                b.to_string(),
                db.head_id(b).unwrap(),
                db.read(b, &CounterQuery::Value).unwrap(),
            )
        })
        .collect();
    (branches, db.tick())
}

fn assert_recovers_exactly(dir: &std::path::Path, truth: &SessionTruth) {
    let backend = SegmentBackend::open_with(dir, tiny_segments()).unwrap();
    let db: BranchStore<Counter, _> = BranchStore::open(backend).unwrap();
    assert_eq!(truth_of(&db), *truth, "recovered store differs from truth");
}

#[test]
fn reopen_after_crash_mid_rotation_recovers_everything() {
    let scratch = Scratch::new("crash-mid-rotation");
    let dir = scratch.path().join("db");
    let truth = {
        let mut db = multi_segment_session(&dir);
        let t = truth_of(&db);
        // Crash between creating the successor segment and the manifest
        // swap: the new file exists on disk but no manifest lists it.
        db.backend_mut().crash_mid_rotation().unwrap();
        t
    };
    assert_recovers_exactly(&dir, &truth);
    // The orphaned successor was swept at reopen.
    let segs = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| n.ends_with(".seg"))
        .count();
    let listed = SegmentBackend::open_with(&dir, tiny_segments())
        .unwrap()
        .file_names()
        .len();
    assert_eq!(segs, listed, "unlisted rotation debris must be deleted");
}

#[test]
fn reopen_after_crash_mid_compaction_recovers_at_every_fault_point() {
    for fault in [
        CompactionFault::AfterTempWrite,
        CompactionFault::AfterPackRename,
        CompactionFault::AfterManifestSwap,
    ] {
        let scratch = Scratch::new("crash-mid-compaction");
        let dir = scratch.path().join("db");
        let truth = {
            let mut db = multi_segment_session(&dir);
            let t = truth_of(&db);
            db.backend_mut().compact_with_fault(fault).unwrap();
            t
        };
        // Whatever manifest the crash left (pre- or post-swap), reopen
        // serves exactly the published session — and a second, completed
        // compaction still reaches the packed steady state.
        assert_recovers_exactly(&dir, &truth);
        let backend = SegmentBackend::open_with(&dir, tiny_segments()).unwrap();
        let mut db: BranchStore<Counter, _> = BranchStore::open(backend).unwrap();
        db.compact_storage().unwrap();
        assert_eq!(db.backend().file_names().len(), 2, "fault {fault:?}");
        assert_eq!(truth_of(&db), truth, "fault {fault:?}: post-compaction");
    }
}

#[test]
fn gc_then_reopen_recovers_graph_tick_and_branches() {
    let scratch = Scratch::new("crash-gc-reopen");
    let dir = scratch.path().join("db");
    let (branches_before, commits_before) = {
        let mut db = multi_segment_session(&dir);
        // Strand some history: work on a scratch branch, then repoint its
        // ref back at main's head — the scratch commits stay in the
        // graph but no ref reaches them, so GC must reclaim them.
        db.branch_mut("main").unwrap().fork("scratch").unwrap();
        for _ in 0..4 {
            db.branch_mut("scratch")
                .unwrap()
                .apply(&CounterOp::Increment)
                .unwrap();
        }
        let main_head = db.head_id("main").unwrap();
        db.force_track("scratch", main_head).unwrap();
        let commit_count = db.commit_count();
        let swept = db.collect_garbage().unwrap();
        assert!(swept.dead_objects > 0, "stranded commits must be dead");
        (truth_of(&db).0, commit_count)
    };

    // Reopen once: this is the post-GC ground truth (branch heads and
    // values are untouched by GC; the Lamport clock recovers as the max
    // over *reachable* history — the stranded mints are gone with their
    // commits, which is exactly what GC promised).
    let truth = {
        let backend = SegmentBackend::open_with(&dir, tiny_segments()).unwrap();
        let db: BranchStore<Counter, _> = BranchStore::open(backend).unwrap();
        assert_eq!(truth_of(&db).0, branches_before, "GC altered a branch");
        assert!(
            db.commit_count() < commits_before,
            "the stranded commits must not come back at reopen"
        );
        truth_of(&db)
    };
    // And reopen is a fixed point: graph, tick and branch table are
    // stable across further reopens of the GC'd + compacted store.
    assert_recovers_exactly(&dir, &truth);
}

/// CI's cross-run storage-format stability gate. When
/// `PEEPUL_FIXTURE_DIR` is set (the crash job points it at a directory
/// held in `actions/cache`, keyed on the storage-engine sources), this
/// test either builds a deterministic multi-segment fixture there or —
/// when the cache restored one from an *earlier CI run* — reopens it
/// and checks the known truth. A cached fixture that no longer opens
/// means the on-disk format changed without changing the cache key's
/// source files. Locally (env unset) the test is a no-op.
#[test]
fn cached_fixture_reopens_across_ci_runs() {
    let Ok(dir) = std::env::var("PEEPUL_FIXTURE_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    const INCREMENTS: u64 = 42;
    if dir.join("manifest").exists() {
        // Restored from cache: yesterday's bytes must open today.
        let backend = SegmentBackend::open_with(&dir, tiny_segments()).unwrap();
        let db: BranchStore<Counter, _> = BranchStore::open(backend).unwrap();
        assert_eq!(
            db.read("main", &CounterQuery::Value).unwrap(),
            INCREMENTS,
            "cached fixture decodes to the wrong value — storage format drifted"
        );
        assert!(
            db.backend().file_names().len() > 2,
            "fixture lost its segments"
        );
        return;
    }
    let backend = SegmentBackend::open_with(&dir, tiny_segments()).unwrap();
    let mut db: BranchStore<Counter, _> = BranchStore::with_backend("main", backend).unwrap();
    for _ in 0..INCREMENTS {
        db.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
    }
    db.flush().unwrap();
    assert!(
        db.backend().file_names().len() > 2,
        "fixture must span segments"
    );
}

//! Crash-reopen torture for the on-disk segment backend — at the byte
//! level **and** at the typed level.
//!
//! The backend's durability contract is write → fsync → publish: once a
//! `put`/`set_ref` returns, a crash must not lose it. We simulate a crash
//! mid-write by truncating the segment file at **every possible offset**
//! inside the final record and at arbitrary earlier tail offsets, then
//! reopen and assert that every record fully written before the
//! truncation point is intact and integrity-checked.
//!
//! Since the codec unification the same torture runs one layer up:
//! `BranchStore::open` must rebuild **typed** state from whatever prefix
//! survived — heads, commit graph, Lamport clock and query answers all
//! equal to the last fully published state before the cut
//! (`typed_reopen_at_every_truncation_point_serves_the_published_prefix`).

mod common;

use common::Scratch;
use peepul::prelude::*;
use peepul::store::{Backend, ObjectId, SegmentBackend, SegmentOptions};
use peepul::types::counter::{Counter, CounterOp, CounterQuery};
use peepul::types::or_set_space::{OrSetOp, OrSetQuery, OrSetSpace};

fn quick() -> SegmentOptions {
    SegmentOptions { durable: false }
}

/// Writes `count` objects one at a time, recording the file length after
/// each publish. Returns `(ids, lengths)` with `lengths[i]` = bytes on
/// disk once object `i` was published.
fn publish_objects(dir: &std::path::Path, count: usize) -> (Vec<ObjectId>, Vec<u64>) {
    let mut backend = SegmentBackend::open_with(dir, quick()).unwrap();
    let mut ids = Vec::new();
    let mut lengths = Vec::new();
    for i in 0..count {
        let payload = format!("object payload number {i}, padded {}", "x".repeat(i * 7));
        ids.push(backend.put(payload.as_bytes()).unwrap());
        lengths.push(std::fs::metadata(dir.join("store.seg")).unwrap().len());
    }
    (ids, lengths)
}

fn truncate(file: &std::path::Path, len: u64) {
    std::fs::OpenOptions::new()
        .write(true)
        .open(file)
        .unwrap()
        .set_len(len)
        .unwrap();
}

#[test]
fn every_truncation_point_preserves_published_records() {
    let scratch = Scratch::new("crash-every-offset");
    let dir = scratch.path().join("db");
    let (ids, lengths) = publish_objects(&dir, 6);
    let file = dir.join("store.seg");
    let full = *lengths.last().unwrap();

    // Walk backwards over every byte of the file, killing the tail there.
    for cut in (9..=full).rev() {
        truncate(&file, cut);
        let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
        for (i, id) in ids.iter().enumerate() {
            if lengths[i] <= cut {
                // Fully written before the crash point: must be intact…
                let bytes = backend
                    .get(*id)
                    .unwrap_or_else(|e| panic!("cut {cut}, object {i}: {e}"))
                    .unwrap_or_else(|| panic!("cut {cut}: object {i} lost"));
                assert_eq!(
                    ObjectId::from_bytes(peepul::store::sha256::Sha256::digest(&bytes)),
                    *id
                );
            } else {
                // …anything torn is dropped, never served corrupt.
                assert!(backend.get(*id).unwrap().is_none(), "cut {cut}, object {i}");
            }
        }
    }
}

#[test]
fn reopen_after_crash_continues_the_log() {
    let scratch = Scratch::new("crash-continue");
    let dir = scratch.path().join("db");
    let (ids, lengths) = publish_objects(&dir, 4);
    let file = dir.join("store.seg");

    // Crash in the middle of object 3's record.
    truncate(&file, lengths[2] + (lengths[3] - lengths[2]) / 2);

    // The reopened backend recovers 0..=2, drops 3, and keeps appending.
    let mut backend = SegmentBackend::open_with(&dir, quick()).unwrap();
    assert_eq!(backend.object_count(), 3);
    assert!(!backend.contains(ids[3]).unwrap());
    let replacement = backend.put(b"written by the restarted process").unwrap();
    drop(backend);

    let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
    for id in &ids[..3] {
        assert!(backend.contains(*id).unwrap());
    }
    assert!(backend.contains(replacement).unwrap());
}

#[test]
fn typed_reopen_at_every_truncation_point_serves_the_published_prefix() {
    let scratch = Scratch::new("typed-reopen-every-offset");
    let dir = scratch.path().join("db");
    let file = dir.join("store.seg");

    // Build a session one publish at a time, recording after each apply
    // the on-disk length, the head commit id, and the expected count —
    // the "last published prefix" ground truth for every cut point.
    let mut checkpoints: Vec<(u64, ObjectId, u64)> = Vec::new();
    {
        let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
        let mut db: BranchStore<Counter, _> = BranchStore::with_backend("main", backend).unwrap();
        checkpoints.push((
            std::fs::metadata(&file).unwrap().len(),
            db.head_id("main").unwrap(),
            0,
        ));
        for i in 1..=6u64 {
            db.branch_mut("main")
                .unwrap()
                .apply(&CounterOp::Increment)
                .unwrap();
            checkpoints.push((
                std::fs::metadata(&file).unwrap().len(),
                db.head_id("main").unwrap(),
                i,
            ));
        }
    }
    let base = checkpoints.first().unwrap().0;
    let full = checkpoints.last().unwrap().0;

    // Kill the tail at every byte offset and reopen **as typed state**:
    // the recovered head commit, query answer and Lamport clock must be
    // exactly those of the longest fully-published prefix.
    for cut in (base..=full).rev() {
        truncate(&file, cut);
        let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
        let db: BranchStore<Counter, _> =
            BranchStore::open(backend).unwrap_or_else(|e| panic!("cut {cut}: open failed: {e}"));
        let (_, head, count) = checkpoints
            .iter()
            .rev()
            .find(|(len, _, _)| *len <= cut)
            .expect("the root publish is below every cut");
        assert_eq!(db.head_id("main").unwrap(), *head, "cut {cut}: head");
        assert_eq!(
            db.read("main", &CounterQuery::Value).unwrap(),
            *count,
            "cut {cut}: typed query"
        );
        assert_eq!(db.tick(), *count, "cut {cut}: Lamport clock");
    }
}

#[test]
fn typed_reopen_recovers_multi_branch_stores_after_a_torn_tail() {
    let scratch = Scratch::new("typed-reopen-branches");
    let dir = scratch.path().join("db");

    // A multi-branch OR-set session, recording what each head looked like
    // the moment it was published (head commit id → elements).
    let mut published: Vec<(ObjectId, Vec<u32>)> = Vec::new();
    {
        let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
        let mut db: BranchStore<OrSetSpace<u32>, _> =
            BranchStore::with_backend("main", backend).unwrap();
        let snap = |db: &BranchStore<OrSetSpace<u32>, SegmentBackend>, b: &str| {
            let peepul::types::or_set_space::OrSetOutput::Elements(e) =
                db.read(b, &OrSetQuery::Read).unwrap()
            else {
                panic!("read returns elements")
            };
            (db.head_id(b).unwrap(), e)
        };
        published.push(snap(&db, "main"));
        db.branch_mut("main").unwrap().fork("dev").unwrap();
        for i in 0..4 {
            db.branch_mut("main")
                .unwrap()
                .apply(&OrSetOp::Add(i))
                .unwrap();
            published.push(snap(&db, "main"));
            db.branch_mut("dev")
                .unwrap()
                .apply(&OrSetOp::Add(i + 100))
                .unwrap();
            published.push(snap(&db, "dev"));
        }
        db.branch_mut("main").unwrap().merge_from("dev").unwrap();
        published.push(snap(&db, "main"));
    }

    // Crash mid-record, then reopen as typed state. Whatever head each
    // surviving ref points at, the typed store must answer queries exactly
    // as it did when that head was live.
    let file = dir.join("store.seg");
    truncate(&file, std::fs::metadata(&file).unwrap().len() - 5);
    let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
    let db: BranchStore<OrSetSpace<u32>, _> = BranchStore::open(backend).unwrap();
    assert!(!db.branch_names().is_empty());
    for b in db.branch_names() {
        let head = db.head_id(b).unwrap();
        let expected = published
            .iter()
            .find(|(h, _)| *h == head)
            .unwrap_or_else(|| panic!("{b}: recovered head {} was never published", head.short()));
        let peepul::types::or_set_space::OrSetOutput::Elements(e) =
            db.read(b, &OrSetQuery::Read).unwrap()
        else {
            panic!("read returns elements")
        };
        assert_eq!(e, expected.1, "{b}: typed state matches publish-time");
    }
}

#[test]
fn branch_store_heads_survive_crash_reopen() {
    let scratch = Scratch::new("crash-store");
    let dir = scratch.path().join("db");

    // A full store session: commits and ref updates interleaved.
    let (heads, seg_len) = {
        let backend = SegmentBackend::open_with(&dir, quick()).unwrap();
        let mut db: BranchStore<Counter, _> = BranchStore::with_backend("main", backend).unwrap();
        db.branch_mut("main").unwrap().fork("dev").unwrap();
        for _ in 0..5 {
            db.branch_mut("main")
                .unwrap()
                .apply(&CounterOp::Increment)
                .unwrap();
            db.branch_mut("dev")
                .unwrap()
                .apply(&CounterOp::Increment)
                .unwrap();
        }
        db.branch_mut("main").unwrap().merge_from("dev").unwrap();
        (db.backend().refs().unwrap(), db.backend().len_bytes())
    };

    // Crash: tear off the last 5 bytes (mid-record), then reopen.
    let file = dir.join("store.seg");
    truncate(&file, std::fs::metadata(&file).unwrap().len() - 5);
    let reopened = SegmentBackend::open_with(&dir, quick()).unwrap();

    // The torn record was the *only* loss: every published commit — in
    // particular every branch head the refs point at — is intact.
    for (branch, head) in &heads {
        // The last ref write may itself have been the torn record; if the
        // ref survived, the commit it points at must be retrievable.
        if let Some(id) = reopened.get_ref(branch).unwrap() {
            assert!(
                reopened.get(id).unwrap().is_some(),
                "{branch}: surviving ref points at a lost commit"
            );
            if id == *head {
                assert!(reopened.get(*head).unwrap().is_some());
            }
        }
    }
    assert!(reopened.len_bytes() <= seg_len);
    assert!(reopened.object_count() > 0);
}

//! Behavioural comparison between the Peepul data types and the Quark
//! baseline: identical conflict-resolution semantics, divergent cost
//! profiles — the premise of the paper's §7.2.1 evaluation.

use peepul::prelude::*;
use peepul::quark::{QuarkOrSet, QuarkQueue};
use peepul::types::or_set::OrSetOp;
use peepul::types::or_set_space::OrSetSpace;
use peepul::types::queue::QueueOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ts(tick: u64, r: u32) -> Timestamp {
    Timestamp::new(tick, ReplicaId::new(r))
}

#[test]
fn quark_queue_merges_agree_with_peepul_across_random_divergences() {
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..25 {
        let mut tick = 0u64;
        let mut next = |r: u32| {
            tick += 1;
            ts(tick, r)
        };
        let mut p: Queue<u32> = Queue::initial();
        let mut q: QuarkQueue<u32> = QuarkQueue::initial();
        for v in 0..rng.gen_range(0..25u32) {
            let t = next(0);
            p = p.apply(&QueueOp::Enqueue(v), t).0;
            q = q.apply(&QueueOp::Enqueue(v), t).0;
        }
        let mut branches = Vec::new();
        for r in 1..=2u32 {
            let (mut bp, mut bq) = (p.clone(), q.clone());
            for i in 0..rng.gen_range(0..20u32) {
                let t = next(r);
                if rng.gen_bool(0.35) {
                    bp = bp.apply(&QueueOp::Dequeue, t).0;
                    bq = bq.apply(&QueueOp::Dequeue, t).0;
                } else {
                    bp = bp.apply(&QueueOp::Enqueue(1000 * r + i), t).0;
                    bq = bq.apply(&QueueOp::Enqueue(1000 * r + i), t).0;
                }
            }
            branches.push((bp, bq));
        }
        let pm = Queue::merge(&p, &branches[0].0, &branches[1].0);
        let qm = QuarkQueue::merge(&q, &branches[0].1, &branches[1].1);
        assert_eq!(pm.to_list(), qm.to_list());
    }
}

#[test]
fn quark_or_set_grows_with_duplicates_while_peepul_stays_bounded() {
    // The Fig. 13 phenomenon in miniature: same workload, wildly different
    // state sizes.
    let mut rng = StdRng::seed_from_u64(7);
    let universe = 50u32;
    let mut quark: QuarkOrSet<u32> = QuarkOrSet::initial();
    let mut peepul: OrSetSpace<u32> = OrSetSpace::initial();
    for tickn in 1..=4000u64 {
        let x = rng.gen_range(0..universe);
        let op = if rng.gen_bool(0.5) {
            OrSetOp::Add(x)
        } else {
            OrSetOp::Remove(x)
        };
        let t = ts(tickn, 0);
        quark = quark.apply(&op, t).0;
        peepul = peepul.apply(&op, t).0;
    }
    // Quark hoards duplicate pairs (removes retire only one observed pair,
    // so each element's count is a reflected random walk) while Peepul
    // stays ≤ |universe|.
    assert!(peepul.pair_count() <= universe as usize);
    assert!(
        quark.pair_count() > peepul.pair_count() * 3,
        "quark: {}, peepul: {}",
        quark.pair_count(),
        peepul.pair_count()
    );
    // Every element Peepul retains, Quark retains too (Quark only ever
    // *over*-retains).
    for x in peepul.elements() {
        assert!(quark.contains(&x));
    }
}

#[test]
fn quark_queue_merge_scales_quadratically_in_relation_size() {
    // Verify the mechanism behind Fig. 12 without timing: the reified
    // ordering relation is Θ(n²) while Peepul's merge handles plain lists.
    use peepul::quark::relations::ordering_relation;
    for n in [10usize, 20, 40] {
        let seq: Vec<u32> = (0..n as u32).collect();
        assert_eq!(ordering_relation(&seq).len(), n * (n - 1) / 2);
    }
}

#[test]
fn quark_or_set_add_wins_matches_peepul_or_set() {
    let (lq, _) = QuarkOrSet::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
    let (lp, _) = OrSet::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
    let (qa, _) = lq.apply(&OrSetOp::Remove(1), ts(2, 1));
    let (pa, _) = lp.apply(&OrSetOp::Remove(1), ts(2, 1));
    let (qb, _) = lq.apply(&OrSetOp::Add(1), ts(3, 2));
    let (pb, _) = lp.apply(&OrSetOp::Add(1), ts(3, 2));
    let qm = QuarkOrSet::merge(&lq, &qa, &qb);
    let pm = OrSet::merge(&lp, &pa, &pb);
    assert_eq!(qm.elements(), pm.elements());
    assert!(qm.contains(&1));
}

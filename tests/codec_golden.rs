//! Golden vectors for the canonical codec — the drift tripwire.
//!
//! Since the codec unification the `Wire` encoding is simultaneously the
//! **storage format** (what `SegmentBackend` persists and
//! `BranchStore::open` decodes), the **wire format** (what replication
//! transfers) and the **content-address preimage** (`sha256(bytes)`).
//! A silent change to any encoder therefore corrupts on-disk stores *and*
//! breaks cross-version replication at once. This test pins the exact
//! bytes of a representative value of **all 14 types** against fixtures
//! checked into `tests/fixtures/codec/`, and CI runs it as a dedicated
//! step: any encoding drift fails the build until the change is made
//! deliberately (re-bless with `PEEPUL_BLESS_CODEC=1 cargo test --test
//! codec_golden` and review the fixture diff like any other breaking
//! change — it invalidates every existing segment file).
//!
//! Each fixture is the lowercase hex of the canonical encoding. The test
//! also decodes the fixture back and re-encodes it, so the vectors prove
//! decodability, not just stability.

use peepul::core::{Delta, Mrdt, ReplicaId, Timestamp, Wire};
use peepul::types::avl::AvlMap;
use peepul::types::chat::{Chat, ChatOp};
use peepul::types::counter::{Counter, CounterOp};
use peepul::types::ew_flag::{EwFlag, EwFlagOp, EwFlagSpace};
use peepul::types::g_set::{GSet, GSetOp};
use peepul::types::log::{LogOp, MergeableLog};
use peepul::types::lww_register::{LwwOp, LwwRegister};
use peepul::types::map::{MapOp, MrdtMap};
use peepul::types::or_set::{OrSet, OrSetOp};
use peepul::types::or_set_space::OrSetSpace;
use peepul::types::or_set_spacetime::OrSetSpacetime;
use peepul::types::pn_counter::{PnCounter, PnCounterOp};
use peepul::types::queue::{Queue, QueueOp};
use std::path::PathBuf;

fn ts(tick: u64, r: u32) -> Timestamp {
    Timestamp::new(tick, ReplicaId::new(r))
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/codec")
        .join(format!("{name}.hex"))
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(s: &str) -> Vec<u8> {
    let s = s.trim();
    assert!(s.len() % 2 == 0, "fixture must be whole bytes");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("fixture is hex"))
        .collect()
}

/// Pins `value`'s canonical encoding against its fixture (or writes the
/// fixture when blessing), and proves the fixture decodes + re-encodes
/// byte-identically.
fn golden<T: Wire + std::fmt::Debug>(name: &str, value: &T) {
    let bytes = value.to_wire();
    let path = fixture_path(name);
    if std::env::var_os("PEEPUL_BLESS_CODEC").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, to_hex(&bytes) + "\n").unwrap();
        return;
    }
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing codec fixture {} ({e}); generate with \
             PEEPUL_BLESS_CODEC=1 cargo test --test codec_golden",
            path.display()
        )
    });
    assert_eq!(
        to_hex(&bytes),
        fixture.trim(),
        "{name}: canonical encoding drifted from the golden vector — this \
         breaks every existing segment file and cross-version replication; \
         if intentional, re-bless the fixture and say so in the PR"
    );
    // The vector is decodable and canonical, not just stable.
    let decoded = T::from_wire(&from_hex(&fixture))
        .unwrap_or_else(|| panic!("{name}: golden bytes no longer decode"));
    assert_eq!(decoded.to_wire(), bytes, "{name}: re-encode drifted");
}

/// Pins the wire encoding of `child.diff(parent)` against a fixture —
/// since delta sync the delta script is a storage *and* transfer format
/// (`SegmentBackend` persists it inside delta state records, `StatesDelta`
/// replies ship it), so it gets the same drift tripwire as the canonical
/// encoding — and proves the pinned delta still *resolves*: applying it to
/// the parent reproduces the child's canonical bytes exactly (the
/// content-address preimage, so a drift here breaks hash verification).
fn golden_delta<M: Mrdt>(name: &str, parent: &M, child: &M) {
    let delta = child.diff(parent);
    let bytes = delta.to_wire();
    let path = fixture_path(name);
    if std::env::var_os("PEEPUL_BLESS_CODEC").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, to_hex(&bytes) + "\n").unwrap();
        return;
    }
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing codec fixture {} ({e}); generate with \
             PEEPUL_BLESS_CODEC=1 cargo test --test codec_golden",
            path.display()
        )
    });
    assert_eq!(
        to_hex(&bytes),
        fixture.trim(),
        "{name}: delta encoding drifted from the golden vector — this breaks \
         every delta-stored segment file and in-flight delta sync; if \
         intentional, re-bless the fixture and say so in the PR"
    );
    let pinned = Delta::from_wire(&from_hex(&fixture))
        .unwrap_or_else(|| panic!("{name}: golden delta bytes no longer decode"));
    let resolved = M::apply_delta(parent, &pinned)
        .unwrap_or_else(|| panic!("{name}: golden delta no longer applies to its base"));
    assert_eq!(
        resolved.to_wire(),
        child.to_wire(),
        "{name}: resolved delta drifted from the child's canonical bytes"
    );
}

/// Applies `ops` sequentially with deterministic timestamps.
fn build<M: Mrdt>(ops: &[M::Op]) -> M {
    let mut state = M::initial();
    for (i, op) in ops.iter().enumerate() {
        state = state.apply(op, ts(i as u64 + 1, (i % 3) as u32)).0;
    }
    state
}

#[test]
fn counter_golden() {
    golden("counter", &build::<Counter>(&[CounterOp::Increment; 3]));
}

#[test]
fn pn_counter_golden() {
    golden(
        "pn_counter",
        &build::<PnCounter>(&[
            PnCounterOp::Increment,
            PnCounterOp::Increment,
            PnCounterOp::Decrement,
        ]),
    );
}

#[test]
fn ew_flag_golden() {
    golden(
        "ew_flag",
        &build::<EwFlag>(&[EwFlagOp::Enable, EwFlagOp::Disable, EwFlagOp::Enable]),
    );
}

#[test]
fn ew_flag_space_golden() {
    golden(
        "ew_flag_space",
        &build::<EwFlagSpace>(&[EwFlagOp::Enable, EwFlagOp::Disable, EwFlagOp::Enable]),
    );
}

#[test]
fn lww_register_golden() {
    golden(
        "lww_register",
        &build::<LwwRegister<u32>>(&[LwwOp::Write(7), LwwOp::Write(1_000_000)]),
    );
}

#[test]
fn g_set_golden() {
    golden(
        "g_set",
        &build::<GSet<u32>>(&[GSetOp::Add(3), GSetOp::Add(1), GSetOp::Add(3)]),
    );
}

#[test]
fn g_map_golden() {
    golden(
        "g_map",
        &build::<MrdtMap<Counter>>(&[
            MapOp::Set("hits".into(), CounterOp::Increment),
            MapOp::Set("misses".into(), CounterOp::Increment),
            MapOp::Set("hits".into(), CounterOp::Increment),
        ]),
    );
}

#[test]
fn log_golden() {
    golden(
        "log",
        &build::<MergeableLog<u32>>(&[LogOp::Append(10), LogOp::Append(20)]),
    );
}

#[test]
fn or_set_golden() {
    golden(
        "or_set",
        &build::<OrSet<u32>>(&[
            OrSetOp::Add(5),
            OrSetOp::Add(5),
            OrSetOp::Remove(5),
            OrSetOp::Add(9),
        ]),
    );
}

#[test]
fn or_set_space_golden() {
    golden(
        "or_set_space",
        &build::<OrSetSpace<u32>>(&[OrSetOp::Add(5), OrSetOp::Add(5), OrSetOp::Add(2)]),
    );
}

#[test]
fn or_set_spacetime_golden() {
    golden(
        "or_set_spacetime",
        &build::<OrSetSpacetime<u32>>(&[OrSetOp::Add(5), OrSetOp::Add(2), OrSetOp::Add(8)]),
    );
}

#[test]
fn queue_golden() {
    golden(
        "queue",
        &build::<Queue<u32>>(&[
            QueueOp::Enqueue(1),
            QueueOp::Enqueue(2),
            QueueOp::Dequeue,
            QueueOp::Enqueue(3),
        ]),
    );
}

#[test]
fn chat_golden() {
    golden(
        "chat",
        &build::<Chat>(&[
            ChatOp::Send("#rust".into(), "hello".into()),
            ChatOp::Send("#rust".into(), "world".into()),
            ChatOp::Send("#ocaml".into(), "mergeable".into()),
        ]),
    );
}

#[test]
fn avl_map_golden() {
    let map: AvlMap<u32, u64> = [(2u32, 20u64), (1, 10), (3, 30)].into_iter().collect();
    golden("avl_map", &map);
}

#[test]
fn counter_delta_golden() {
    let parent = build::<Counter>(&[CounterOp::Increment; 2]);
    let child = parent.apply(&CounterOp::Increment, ts(3, 0)).0;
    golden_delta("counter_delta", &parent, &child);
}

#[test]
fn or_set_space_delta_golden() {
    let parent = build::<OrSetSpace<u32>>(&[OrSetOp::Add(5), OrSetOp::Add(5), OrSetOp::Add(2)]);
    let child = parent.apply(&OrSetOp::Add(9), ts(4, 1)).0;
    golden_delta("or_set_space_delta", &parent, &child);
}

#[test]
fn log_delta_golden() {
    let parent = build::<MergeableLog<u32>>(&[LogOp::Append(10), LogOp::Append(20)]);
    let child = parent.apply(&LogOp::Append(30), ts(3, 2)).0;
    golden_delta("log_delta", &parent, &child);
}

#[test]
fn g_map_delta_golden() {
    let parent = build::<MrdtMap<Counter>>(&[
        MapOp::Set("hits".into(), CounterOp::Increment),
        MapOp::Set("misses".into(), CounterOp::Increment),
    ]);
    let child = parent
        .apply(&MapOp::Set("hits".into(), CounterOp::Increment), ts(3, 2))
        .0;
    golden_delta("g_map_delta", &parent, &child);
}

/// The commit record format is pinned too: it is the other half of what a
/// segment file contains, and fetch negotiation parses it.
#[test]
fn commit_record_golden() {
    use peepul::store::{commit_record, content_id, parse_commit_record};
    let a = content_id(&1u8);
    let s = content_id(&2u8);
    let record = commit_record(&[a], s, 7, 9);
    let path = fixture_path("commit_record");
    if std::env::var_os("PEEPUL_BLESS_CODEC").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, to_hex(&record) + "\n").unwrap();
        return;
    }
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing codec fixture {} ({e}); generate with \
             PEEPUL_BLESS_CODEC=1 cargo test --test codec_golden",
            path.display()
        )
    });
    assert_eq!(to_hex(&record), fixture.trim(), "commit record drifted");
    assert!(parse_commit_record(&from_hex(&fixture)).is_some());
}

//! Property test: the declarative queue axioms of §6.2 (`AddRem`, `Empty`,
//! `FIFO_1`, `FIFO_2`) hold on the final abstract state of **every** branch
//! of arbitrary certified executions — the paper's first formal declarative
//! specification of a distributed queue, checked wholesale.

use peepul::types::queue::{axioms, Queue, QueueOp};
use peepul::verify::proptest_support::schedules;
use peepul::verify::Runner;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn queue_axioms_hold_on_arbitrary_executions(
        s in schedules((0u8..3, 0u8..50), 30, 3)
    ) {
        let schedule = s.map_ops(|(k, v)| match k {
            0 | 1 => QueueOp::Enqueue(v),
            _ => QueueOp::Dequeue,
        });
        let mut runner: Runner<Queue<u8>> = Runner::new();
        // Certification already checks Φ_do/Φ_merge/Φ_spec/Φ_con…
        prop_assert!(runner.run_schedule(&schedule).is_ok());
        // …and on top, every branch's abstract history satisfies the
        // declarative axioms.
        for (branch, snap) in runner.snapshots() {
            prop_assert!(
                axioms::add_rem(&snap.abstract_state),
                "AddRem violated on {branch}"
            );
            prop_assert!(
                axioms::empty(&snap.abstract_state),
                "Empty violated on {branch}"
            );
            prop_assert!(
                axioms::fifo1(&snap.abstract_state),
                "FIFO_1 violated on {branch}"
            );
            prop_assert!(
                axioms::fifo2(&snap.abstract_state),
                "FIFO_2 violated on {branch}"
            );
        }
    }
}

//! Shared harness running integration suites against **every** backend.
//!
//! A test written as `fn body(make: &mut BackendFactory)` constructs each
//! of its stores through the factory and is executed once per backend:
//! the interning [`MemoryBackend`] and the on-disk [`SegmentBackend`]
//! (each store in its own scratch directory, fsync off — durability
//! ordering is exercised by `tests/crash_reopen.rs`, not here). A failure
//! message names the backend that broke.

// Each test binary compiles this module separately and uses a subset.
#![allow(dead_code)]

use peepul::store::{Backend, MemoryBackend, SegmentBackend, SegmentOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Produces a fresh backend per store the test builds.
pub type BackendFactory<'a> = dyn FnMut() -> Box<dyn Backend + Send + Sync> + 'a;

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory under the system temp dir; removed (best
/// effort) by [`Scratch::drop`].
pub struct Scratch {
    root: PathBuf,
}

impl Scratch {
    pub fn new(tag: &str) -> Self {
        let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        let root =
            std::env::temp_dir().join(format!("peepul-test-{}-{tag}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create scratch dir");
        Scratch { root }
    }

    pub fn path(&self) -> &std::path::Path {
        &self.root
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        // On a failing test, leave the scratch directory behind as the
        // post-crash evidence — CI uploads it as an artifact.
        if std::thread::panicking() {
            eprintln!("test panicked; keeping scratch dir {}", self.root.display());
            return;
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Runs `test` once per backend kind. `tag` isolates the on-disk scratch
/// space per test.
pub fn for_each_backend(tag: &str, mut test: impl FnMut(&str, &mut BackendFactory<'_>)) {
    {
        let mut make: Box<dyn FnMut() -> Box<dyn Backend + Send + Sync>> =
            Box::new(|| Box::new(MemoryBackend::new()));
        test("memory", &mut *make);
    }
    {
        let scratch = Scratch::new(tag);
        let mut n = 0u32;
        let mut make: Box<dyn FnMut() -> Box<dyn Backend + Send + Sync>> = Box::new(|| {
            n += 1;
            Box::new(
                SegmentBackend::open_with(
                    scratch.path().join(n.to_string()),
                    SegmentOptions {
                        durable: false,
                        ..SegmentOptions::default()
                    },
                )
                .expect("open segment backend"),
            )
        });
        test("segment", &mut *make);
    }
}

//! Integration tests spanning the store, data types and content-addressing
//! layers — every store-driven scenario runs against **both** persistence
//! backends (in-memory and on-disk segment) through the shared harness in
//! `tests/common`.

mod common;

use common::{for_each_backend, BackendFactory};
use peepul::prelude::*;
use peepul::store::{content_id, ObjectStore};
use peepul::types::chat::ChatOp;
use peepul::types::counter::CounterOp;
use peepul::types::g_set::GSetOp;
use peepul::types::map::MapOp;
use peepul::types::or_set_space::{OrSetOp, OrSetOutput, OrSetQuery};
use peepul::types::queue::{QueueOp, QueueValue};

type Db<M> = BranchStore<M, Box<dyn Backend + Send + Sync>>;

fn open<M: Mrdt>(make: &mut BackendFactory<'_>, root: &str) -> Db<M> {
    BranchStore::with_backend(root, make()).expect("open store")
}

#[test]
fn chat_over_the_store_reaches_every_replica() {
    for_each_backend("chat", |kind, make| {
        let mut db: Db<Chat> = open(make, "alice");
        db.branch_mut("alice")
            .unwrap()
            .apply(&ChatOp::Send("#general".into(), "hello".into()))
            .unwrap();
        db.branch_mut("alice").unwrap().fork("bob").unwrap();
        db.branch_mut("bob")
            .unwrap()
            .apply(&ChatOp::Send("#general".into(), "hi back".into()))
            .unwrap();
        db.branch_mut("alice")
            .unwrap()
            .apply(&ChatOp::Send("#random".into(), "elsewhere".into()))
            .unwrap();
        db.branch_mut("alice").unwrap().merge_from("bob").unwrap();
        db.branch_mut("bob").unwrap().merge_from("alice").unwrap();

        let alice = db.state("alice").unwrap();
        let bob = db.state("bob").unwrap();
        assert_eq!(alice.channels(), vec!["#general", "#random"], "{kind}");
        assert_eq!(alice.messages("#general").len(), 2, "{kind}");
        assert!(alice.observably_equal(&bob), "{kind}");
        // Reverse chronological within the channel.
        let msgs = alice.messages("#general");
        assert!(msgs[0].0 > msgs[1].0, "{kind}");
    });
}

#[test]
fn nested_map_of_sets_over_the_store() {
    type Inventory = MrdtMap<GSet<String>>;
    for_each_backend("nested-map", |kind, make| {
        let mut db: Db<Inventory> = open(make, "hq");
        db.branch_mut("hq")
            .unwrap()
            .apply(&MapOp::Set("fruits".into(), GSetOp::Add("apple".into())))
            .unwrap();
        db.branch_mut("hq").unwrap().fork("warehouse").unwrap();
        db.branch_mut("warehouse")
            .unwrap()
            .apply(&MapOp::Set("fruits".into(), GSetOp::Add("banana".into())))
            .unwrap();
        db.branch_mut("hq")
            .unwrap()
            .apply(&MapOp::Set("tools".into(), GSetOp::Add("hammer".into())))
            .unwrap();
        db.branch_mut("hq")
            .unwrap()
            .merge_from("warehouse")
            .unwrap();
        let state = db.state("hq").unwrap();
        assert_eq!(
            state.keys().collect::<Vec<_>>(),
            vec!["fruits", "tools"],
            "{kind}"
        );
        let fruits = state.get("fruits").unwrap();
        assert!(
            fruits.contains(&"apple".to_owned()) && fruits.contains(&"banana".to_owned()),
            "{kind}"
        );
    });
}

#[test]
fn queue_at_least_once_via_store_merges() {
    for_each_backend("queue-alo", |kind, make| {
        let mut db: Db<Queue<u32>> = open(make, "main");
        db.branch_mut("main")
            .unwrap()
            .apply(&QueueOp::Enqueue(1))
            .unwrap();
        db.branch_mut("main")
            .unwrap()
            .apply(&QueueOp::Enqueue(2))
            .unwrap();
        db.branch_mut("main").unwrap().fork("w1").unwrap();
        db.branch_mut("main").unwrap().fork("w2").unwrap();

        let a = db
            .branch_mut("w1")
            .unwrap()
            .apply(&QueueOp::Dequeue)
            .unwrap();
        let b = db
            .branch_mut("w2")
            .unwrap()
            .apply(&QueueOp::Dequeue)
            .unwrap();
        // Concurrent dequeues observed the same head: at-least-once.
        assert_eq!(a, b, "{kind}");

        db.branch_mut("main").unwrap().merge_from("w1").unwrap();
        db.branch_mut("main").unwrap().merge_from("w2").unwrap();
        // Element 1 was consumed (twice); only 2 remains.
        match db
            .branch_mut("main")
            .unwrap()
            .apply(&QueueOp::Dequeue)
            .unwrap()
        {
            QueueValue::Dequeued(Some((_, v))) => assert_eq!(v, 2, "{kind}"),
            other => panic!("{kind}: expected element 2, got {other:?}"),
        }
        match db
            .branch_mut("main")
            .unwrap()
            .apply(&QueueOp::Dequeue)
            .unwrap()
        {
            QueueValue::Dequeued(None) => {}
            other => panic!("{kind}: expected empty, got {other:?}"),
        }
    });
}

#[test]
fn deep_branch_topology_converges() {
    // A chain of forks with interleaved merges: main → f1 → f2 → f3; each
    // adds its own element; merges flow back up the chain and down again.
    for_each_backend("deep-topology", |kind, make| {
        let mut db: Db<OrSetSpace<u32>> = open(make, "main");
        db.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(0))
            .unwrap();
        db.branch_mut("main").unwrap().fork("f1").unwrap();
        db.branch_mut("f1").unwrap().fork("f2").unwrap();
        db.branch_mut("f2").unwrap().fork("f3").unwrap();
        db.branch_mut("f1")
            .unwrap()
            .apply(&OrSetOp::Add(1))
            .unwrap();
        db.branch_mut("f2")
            .unwrap()
            .apply(&OrSetOp::Add(2))
            .unwrap();
        db.branch_mut("f3")
            .unwrap()
            .apply(&OrSetOp::Add(3))
            .unwrap();
        db.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Remove(0))
            .unwrap();

        for b in ["f1", "f2", "f3"] {
            db.branch_mut("main").unwrap().merge_from(b).unwrap();
        }
        for b in ["f1", "f2", "f3"] {
            db.branch_mut(b).unwrap().merge_from("main").unwrap();
        }
        let main = db.state("main").unwrap();
        assert_eq!(main.elements(), vec![1, 2, 3], "{kind}");
        for b in ["f1", "f2", "f3"] {
            assert!(db.state(b).unwrap().observably_equal(&main), "{kind}");
        }
    });
}

#[test]
fn repeated_criss_cross_merges_stay_correct() {
    for_each_backend("criss-cross", |kind, make| {
        let mut db: Db<GSet<u32>> = open(make, "a");
        db.branch_mut("a").unwrap().fork("b").unwrap();
        for round in 0..5u32 {
            db.branch_mut("a")
                .unwrap()
                .apply(&GSetOp::Add(round * 2))
                .unwrap();
            db.branch_mut("b")
                .unwrap()
                .apply(&GSetOp::Add(round * 2 + 1))
                .unwrap();
            // Criss-cross every round.
            db.branch_mut("a").unwrap().merge_from("b").unwrap();
            db.branch_mut("b").unwrap().merge_from("a").unwrap();
        }
        let a = db.state("a").unwrap();
        let b = db.state("b").unwrap();
        assert_eq!(a.len(), 10, "{kind}");
        assert!(a.observably_equal(&b), "{kind}");
    });
}

#[test]
fn content_addressing_interns_equal_states() {
    // Replicas that converge produce equal states; on *any* backend they
    // intern to a single state object with one content address.
    for_each_backend("interning", |kind, make| {
        let mut db: Db<Counter> = open(make, "x");
        db.branch_mut("x").unwrap().fork("y").unwrap();
        db.branch_mut("x")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        db.branch_mut("y")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        db.branch_mut("x").unwrap().merge_from("y").unwrap();
        db.branch_mut("y").unwrap().merge_from("x").unwrap();
        assert_eq!(
            db.state_id("x").unwrap(),
            db.state_id("y").unwrap(),
            "{kind}: converged states share one content address"
        );
        // The backend's dedup counters saw the sharing.
        assert!(db.backend().stats().dedup_hits > 0, "{kind}");
    });

    // The typed ObjectStore view still interns too.
    let mut store: ObjectStore<Counter> = ObjectStore::new();
    let mut db: BranchStore<Counter> = BranchStore::new("x");
    db.branch_mut("x").unwrap().fork("y").unwrap();
    db.branch_mut("x")
        .unwrap()
        .apply(&CounterOp::Increment)
        .unwrap();
    db.branch_mut("y")
        .unwrap()
        .apply(&CounterOp::Increment)
        .unwrap();
    db.branch_mut("x").unwrap().merge_from("y").unwrap();
    db.branch_mut("y").unwrap().merge_from("x").unwrap();
    let sx = *db.state("x").unwrap();
    let sy = *db.state("y").unwrap();
    let (idx, _) = store.insert(sx);
    let (idy, _) = store.insert(sy);
    assert_eq!(idx, idy, "converged states share one content address");
    assert_eq!(store.len(), 1);
}

#[test]
fn content_ids_discriminate_distinct_states() {
    let a = {
        let (s, _) =
            Counter::initial().apply(&CounterOp::Increment, Timestamp::new(1, ReplicaId::new(0)));
        s
    };
    assert_ne!(content_id(&Counter::initial()), content_id(&a));
}

#[test]
fn or_set_add_wins_end_to_end() {
    for_each_backend("add-wins", |kind, make| {
        let mut db: Db<OrSetSpace<String>> = open(make, "main");
        db.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add("doc".into()))
            .unwrap();
        db.branch_mut("main").unwrap().fork("offline").unwrap();
        // Offline device re-adds (refresh); main removes.
        db.branch_mut("offline")
            .unwrap()
            .apply(&OrSetOp::Add("doc".into()))
            .unwrap();
        db.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Remove("doc".into()))
            .unwrap();
        db.branch_mut("main")
            .unwrap()
            .merge_from("offline")
            .unwrap();
        assert_eq!(
            db.read("main", &OrSetQuery::Lookup("doc".into())).unwrap(),
            OrSetOutput::Present(true),
            "{kind}"
        );
    });
}

#[test]
fn history_records_every_transition() {
    for_each_backend("history", |kind, make| {
        let mut db: Db<Counter> = open(make, "main");
        for _ in 0..5 {
            db.branch_mut("main")
                .unwrap()
                .apply(&CounterOp::Increment)
                .unwrap();
        }
        db.branch_mut("main").unwrap().fork("dev").unwrap();
        db.branch_mut("dev")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        db.branch_mut("main").unwrap().merge_from("dev").unwrap();
        // root + 5 DOs + 1 DO on dev + 1 merge = 8 commits in main's history.
        assert_eq!(db.branch("main").unwrap().history().len(), 8, "{kind}");
    });
}

#[test]
fn backend_refs_and_objects_mirror_the_store() {
    for_each_backend("refs-mirror", |kind, make| {
        let mut db: Db<Counter> = open(make, "main");
        db.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        db.branch_mut("main").unwrap().fork("dev").unwrap();
        db.branch_mut("dev")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        db.branch_mut("main").unwrap().merge_from("dev").unwrap();
        // Every branch head is a published ref pointing at a stored commit.
        for branch in db.branch_names().into_iter().map(str::to_owned) {
            let head = db.head_id(&branch).unwrap();
            assert_eq!(
                db.backend().get_ref(&branch).unwrap(),
                Some(head),
                "{kind}: ref {branch}"
            );
            assert!(db.backend().contains(head).unwrap(), "{kind}");
            let state = db.state_id(&branch).unwrap();
            assert!(db.backend().contains(state).unwrap(), "{kind}");
        }
    });
}

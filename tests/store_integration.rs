//! Integration tests spanning the store, data types and content-addressing
//! layers — every store-driven scenario runs against **both** persistence
//! backends (in-memory and on-disk segment) through the shared harness in
//! `tests/common`.

mod common;

use common::{for_each_backend, BackendFactory};
use peepul::prelude::*;
use peepul::store::{content_id, ObjectStore};
use peepul::types::chat::ChatOp;
use peepul::types::counter::CounterOp;
use peepul::types::g_set::GSetOp;
use peepul::types::map::MapOp;
use peepul::types::or_set_space::{OrSetOp, OrSetValue};
use peepul::types::queue::{QueueOp, QueueValue};

type Db<M> = BranchStore<M, Box<dyn Backend + Send>>;

fn open<M: Mrdt>(make: &mut BackendFactory<'_>, root: &str) -> Db<M> {
    BranchStore::with_backend(root, make()).expect("open store")
}

#[test]
fn chat_over_the_store_reaches_every_replica() {
    for_each_backend("chat", |kind, make| {
        let mut db: Db<Chat> = open(make, "alice");
        db.apply("alice", &ChatOp::Send("#general".into(), "hello".into()))
            .unwrap();
        db.fork("bob", "alice").unwrap();
        db.apply("bob", &ChatOp::Send("#general".into(), "hi back".into()))
            .unwrap();
        db.apply("alice", &ChatOp::Send("#random".into(), "elsewhere".into()))
            .unwrap();
        db.merge("alice", "bob").unwrap();
        db.merge("bob", "alice").unwrap();

        let alice = db.state("alice").unwrap();
        let bob = db.state("bob").unwrap();
        assert_eq!(alice.channels(), vec!["#general", "#random"], "{kind}");
        assert_eq!(alice.messages("#general").len(), 2, "{kind}");
        assert!(alice.observably_equal(&bob), "{kind}");
        // Reverse chronological within the channel.
        let msgs = alice.messages("#general");
        assert!(msgs[0].0 > msgs[1].0, "{kind}");
    });
}

#[test]
fn nested_map_of_sets_over_the_store() {
    type Inventory = MrdtMap<GSet<String>>;
    for_each_backend("nested-map", |kind, make| {
        let mut db: Db<Inventory> = open(make, "hq");
        db.apply(
            "hq",
            &MapOp::Set("fruits".into(), GSetOp::Add("apple".into())),
        )
        .unwrap();
        db.fork("warehouse", "hq").unwrap();
        db.apply(
            "warehouse",
            &MapOp::Set("fruits".into(), GSetOp::Add("banana".into())),
        )
        .unwrap();
        db.apply(
            "hq",
            &MapOp::Set("tools".into(), GSetOp::Add("hammer".into())),
        )
        .unwrap();
        db.merge("hq", "warehouse").unwrap();
        let state = db.state("hq").unwrap();
        assert_eq!(
            state.keys().collect::<Vec<_>>(),
            vec!["fruits", "tools"],
            "{kind}"
        );
        let fruits = state.get("fruits").unwrap();
        assert!(
            fruits.contains(&"apple".to_owned()) && fruits.contains(&"banana".to_owned()),
            "{kind}"
        );
    });
}

#[test]
fn queue_at_least_once_via_store_merges() {
    for_each_backend("queue-alo", |kind, make| {
        let mut db: Db<Queue<u32>> = open(make, "main");
        db.apply("main", &QueueOp::Enqueue(1)).unwrap();
        db.apply("main", &QueueOp::Enqueue(2)).unwrap();
        db.fork("w1", "main").unwrap();
        db.fork("w2", "main").unwrap();

        let a = db.apply("w1", &QueueOp::Dequeue).unwrap();
        let b = db.apply("w2", &QueueOp::Dequeue).unwrap();
        // Concurrent dequeues observed the same head: at-least-once.
        assert_eq!(a, b, "{kind}");

        db.merge("main", "w1").unwrap();
        db.merge("main", "w2").unwrap();
        // Element 1 was consumed (twice); only 2 remains.
        match db.apply("main", &QueueOp::Dequeue).unwrap() {
            QueueValue::Dequeued(Some((_, v))) => assert_eq!(v, 2, "{kind}"),
            other => panic!("{kind}: expected element 2, got {other:?}"),
        }
        match db.apply("main", &QueueOp::Dequeue).unwrap() {
            QueueValue::Dequeued(None) => {}
            other => panic!("{kind}: expected empty, got {other:?}"),
        }
    });
}

#[test]
fn deep_branch_topology_converges() {
    // A chain of forks with interleaved merges: main → f1 → f2 → f3; each
    // adds its own element; merges flow back up the chain and down again.
    for_each_backend("deep-topology", |kind, make| {
        let mut db: Db<OrSetSpace<u32>> = open(make, "main");
        db.apply("main", &OrSetOp::Add(0)).unwrap();
        db.fork("f1", "main").unwrap();
        db.fork("f2", "f1").unwrap();
        db.fork("f3", "f2").unwrap();
        db.apply("f1", &OrSetOp::Add(1)).unwrap();
        db.apply("f2", &OrSetOp::Add(2)).unwrap();
        db.apply("f3", &OrSetOp::Add(3)).unwrap();
        db.apply("main", &OrSetOp::Remove(0)).unwrap();

        for b in ["f1", "f2", "f3"] {
            db.merge("main", b).unwrap();
        }
        for b in ["f1", "f2", "f3"] {
            db.merge(b, "main").unwrap();
        }
        let main = db.state("main").unwrap();
        assert_eq!(main.elements(), vec![1, 2, 3], "{kind}");
        for b in ["f1", "f2", "f3"] {
            assert!(db.state(b).unwrap().observably_equal(&main), "{kind}");
        }
    });
}

#[test]
fn repeated_criss_cross_merges_stay_correct() {
    for_each_backend("criss-cross", |kind, make| {
        let mut db: Db<GSet<u32>> = open(make, "a");
        db.fork("b", "a").unwrap();
        for round in 0..5u32 {
            db.apply("a", &GSetOp::Add(round * 2)).unwrap();
            db.apply("b", &GSetOp::Add(round * 2 + 1)).unwrap();
            // Criss-cross every round.
            db.merge("a", "b").unwrap();
            db.merge("b", "a").unwrap();
        }
        let a = db.state("a").unwrap();
        let b = db.state("b").unwrap();
        assert_eq!(a.len(), 10, "{kind}");
        assert!(a.observably_equal(&b), "{kind}");
    });
}

#[test]
fn content_addressing_interns_equal_states() {
    // Replicas that converge produce equal states; on *any* backend they
    // intern to a single state object with one content address.
    for_each_backend("interning", |kind, make| {
        let mut db: Db<Counter> = open(make, "x");
        db.fork("y", "x").unwrap();
        db.apply("x", &CounterOp::Increment).unwrap();
        db.apply("y", &CounterOp::Increment).unwrap();
        db.merge("x", "y").unwrap();
        db.merge("y", "x").unwrap();
        assert_eq!(
            db.state_id("x").unwrap(),
            db.state_id("y").unwrap(),
            "{kind}: converged states share one content address"
        );
        // The backend's dedup counters saw the sharing.
        assert!(db.backend().stats().dedup_hits > 0, "{kind}");
    });

    // The typed ObjectStore view still interns too.
    let mut store: ObjectStore<Counter> = ObjectStore::new();
    let mut db: BranchStore<Counter> = BranchStore::new("x");
    db.fork("y", "x").unwrap();
    db.apply("x", &CounterOp::Increment).unwrap();
    db.apply("y", &CounterOp::Increment).unwrap();
    db.merge("x", "y").unwrap();
    db.merge("y", "x").unwrap();
    let sx = *db.state("x").unwrap();
    let sy = *db.state("y").unwrap();
    let (idx, _) = store.insert(sx);
    let (idy, _) = store.insert(sy);
    assert_eq!(idx, idy, "converged states share one content address");
    assert_eq!(store.len(), 1);
}

#[test]
fn content_ids_discriminate_distinct_states() {
    let a = {
        let (s, _) =
            Counter::initial().apply(&CounterOp::Increment, Timestamp::new(1, ReplicaId::new(0)));
        s
    };
    assert_ne!(content_id(&Counter::initial()), content_id(&a));
}

#[test]
fn or_set_add_wins_end_to_end() {
    for_each_backend("add-wins", |kind, make| {
        let mut db: Db<OrSetSpace<String>> = open(make, "main");
        db.apply("main", &OrSetOp::Add("doc".into())).unwrap();
        db.fork("offline", "main").unwrap();
        // Offline device re-adds (refresh); main removes.
        db.apply("offline", &OrSetOp::Add("doc".into())).unwrap();
        db.apply("main", &OrSetOp::Remove("doc".into())).unwrap();
        db.merge("main", "offline").unwrap();
        assert_eq!(
            db.apply("main", &OrSetOp::Lookup("doc".into())).unwrap(),
            OrSetValue::Present(true),
            "{kind}"
        );
    });
}

#[test]
fn history_records_every_transition() {
    for_each_backend("history", |kind, make| {
        let mut db: Db<Counter> = open(make, "main");
        for _ in 0..5 {
            db.apply("main", &CounterOp::Increment).unwrap();
        }
        db.fork("dev", "main").unwrap();
        db.apply("dev", &CounterOp::Increment).unwrap();
        db.merge("main", "dev").unwrap();
        // root + 5 DOs + 1 DO on dev + 1 merge = 8 commits in main's history.
        assert_eq!(db.history("main").unwrap().len(), 8, "{kind}");
    });
}

#[test]
fn backend_refs_and_objects_mirror_the_store() {
    for_each_backend("refs-mirror", |kind, make| {
        let mut db: Db<Counter> = open(make, "main");
        db.apply("main", &CounterOp::Increment).unwrap();
        db.fork("dev", "main").unwrap();
        db.apply("dev", &CounterOp::Increment).unwrap();
        db.merge("main", "dev").unwrap();
        // Every branch head is a published ref pointing at a stored commit.
        for branch in db.branch_names().into_iter().map(str::to_owned) {
            let head = db.head_id(&branch).unwrap();
            assert_eq!(
                db.backend().get_ref(&branch).unwrap(),
                Some(head),
                "{kind}: ref {branch}"
            );
            assert!(db.backend().contains(head).unwrap(), "{kind}");
            let state = db.state_id(&branch).unwrap();
            assert!(db.backend().contains(state).unwrap(), "{kind}");
        }
    });
}

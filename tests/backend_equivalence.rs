//! Property test: the choice of persistence backend — and the merge
//! cache — is *unobservable*.
//!
//! Any fork/apply/merge schedule replayed on the in-memory backend and on
//! the on-disk segment backend must produce byte-identical branch heads:
//! the same Merkle commit address, the same state address, and the same
//! backend ref table. Likewise a schedule replayed with merge memoization
//! on and off must produce identical addresses — the cache may only ever
//! save work, never change a result.

mod common;

use common::Scratch;
use peepul::prelude::*;
use peepul::store::{Backend, MemoryBackend, ObjectId, SegmentBackend, SegmentOptions};
use peepul::types::or_set_space::{OrSetOp, OrSetOutput, OrSetQuery, OrSetSpace};
use proptest::prelude::*;

/// One step of a randomized schedule, interpreted over a growing set of
/// branches (`branch % live-branch-count` picks the target, so every
/// generated schedule is valid by construction).
#[derive(Clone, Debug)]
enum Step {
    Fork { from: u8 },
    Add { branch: u8, value: u8 },
    Remove { branch: u8, value: u8 },
    Merge { into: u8, from: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        1 => (any::<u8>(),).prop_map(|(from,)| Step::Fork { from }),
        4 => (any::<u8>(), 0u8..16).prop_map(|(branch, value)| Step::Add { branch, value }),
        2 => (any::<u8>(), 0u8..16).prop_map(|(branch, value)| Step::Remove { branch, value }),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(into, from)| Step::Merge { into, from }),
    ]
}

/// Per-branch `(name, head commit address, head state address, elements)`.
type BranchHeads = Vec<(String, ObjectId, ObjectId, Vec<u8>)>;
/// The backend's final ref table.
type RefTable = Vec<(String, ObjectId)>;

/// Replays `schedule` on a store over `backend`, returning every branch's
/// head addresses and query answer, the backend's final ref table, and
/// the store's Lamport tick.
fn replay<B: Backend>(schedule: &[Step], backend: B, cache: bool) -> (BranchHeads, RefTable, u64) {
    let mut db: BranchStore<OrSetSpace<u8>, B> =
        BranchStore::with_backend("b0", backend).expect("open store");
    db.set_merge_cache(cache);
    let mut branches = vec!["b0".to_owned()];
    let pick = |branches: &[String], i: u8| branches[i as usize % branches.len()].clone();
    for (n, step) in schedule.iter().enumerate() {
        match step {
            Step::Fork { from } => {
                let name = format!("b{}", n + 1);
                db.branch_mut(&pick(&branches, *from))
                    .unwrap()
                    .fork(&name)
                    .unwrap();
                branches.push(name);
            }
            Step::Add { branch, value } => {
                db.branch_mut(&pick(&branches, *branch))
                    .unwrap()
                    .apply(&OrSetOp::Add(*value))
                    .unwrap();
            }
            Step::Remove { branch, value } => {
                db.branch_mut(&pick(&branches, *branch))
                    .unwrap()
                    .apply(&OrSetOp::Remove(*value))
                    .unwrap();
            }
            Step::Merge { into, from } => {
                let (into, from) = (pick(&branches, *into), pick(&branches, *from));
                if into != from {
                    db.branch_mut(&into).unwrap().merge_from(&from).unwrap();
                }
            }
        }
    }
    let heads = branches
        .iter()
        .map(|b| {
            let OrSetOutput::Elements(e) = db.read(b, &OrSetQuery::Read).unwrap() else {
                panic!("read returns elements")
            };
            (
                b.clone(),
                db.head_id(b).unwrap(),
                db.state_id(b).unwrap(),
                e,
            )
        })
        .collect();
    (heads, db.backend().refs().unwrap(), db.tick())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In-memory and on-disk replays of the same schedule are
    /// byte-identical: same Merkle head per branch, same state address,
    /// same ref table.
    #[test]
    fn backends_produce_byte_identical_heads(
        schedule in proptest::collection::vec(step_strategy(), 1..40),
    ) {
        let scratch = Scratch::new("equivalence");
        let mem = replay(&schedule, MemoryBackend::new(), true);
        let seg_backend = SegmentBackend::open_with(
            scratch.path().join("replay"),
            SegmentOptions { durable: false, ..SegmentOptions::default() },
        ).unwrap();
        let seg = replay(&schedule, seg_backend, true);
        prop_assert_eq!(&mem, &seg);
    }

    /// Delta-record storage is unobservable: the same schedule replayed
    /// on a full-snapshot store (`snapshot_interval = 0`, every state
    /// persisted as its full canonical bytes) and on a delta-storing
    /// store (the default interval) produces identical heads, state
    /// addresses, ref tables, query answers and Lamport tick — the delta
    /// encoding changes what a state record *costs*, never what it
    /// *means*, and the content address stays the hash of the full
    /// canonical bytes either way.
    #[test]
    fn delta_stored_equals_full_stored(
        schedule in proptest::collection::vec(step_strategy(), 1..40),
    ) {
        let full = replay(&schedule, MemoryBackend::with_snapshot_interval(0), true);
        let delta = replay(&schedule, MemoryBackend::new(), true);
        prop_assert_eq!(&full, &delta);
    }

    /// Memoized and uncached replays of the same schedule are identical —
    /// the merge cache must never change what a schedule produces.
    #[test]
    fn memoized_merges_equal_uncached_merges(
        schedule in proptest::collection::vec(step_strategy(), 1..40),
    ) {
        let cached = replay(&schedule, MemoryBackend::new(), true);
        let uncached = replay(&schedule, MemoryBackend::new(), false);
        prop_assert_eq!(&cached, &uncached);
    }
}

/// The segment replay also survives a close/reopen: reopening the same
/// directory finds every head object and ref the first process published.
#[test]
fn segment_replay_survives_reopen() {
    let scratch = Scratch::new("replay-reopen");
    let dir = scratch.path().join("db");
    let schedule: Vec<Step> = (0..12u8)
        .map(|i| match i % 4 {
            0 => Step::Fork { from: i },
            1 | 2 => Step::Add {
                branch: i,
                value: i,
            },
            _ => Step::Merge {
                into: i,
                from: i.wrapping_add(1),
            },
        })
        .collect();
    let (heads, refs, _) = replay(
        &schedule,
        SegmentBackend::open_with(
            &dir,
            SegmentOptions {
                durable: false,
                ..SegmentOptions::default()
            },
        )
        .unwrap(),
        true,
    );
    // A fresh process reopens the directory: all published objects and
    // refs are there, integrity-checked.
    let reopened = SegmentBackend::open(&dir).unwrap();
    assert_eq!(reopened.refs().unwrap(), refs);
    for (branch, head, state, _) in &heads {
        assert_eq!(
            reopened.get_ref(branch).unwrap().as_ref(),
            Some(head),
            "{branch}"
        );
        assert!(reopened.get(*head).unwrap().is_some());
        assert!(reopened.get(*state).unwrap().is_some());
    }
}

//! True multi-store replication, end to end: the `peepul-net` acceptance
//! suite.
//!
//! What is checked here, nowhere else:
//!
//! * two **independent** `BranchStore`s connected by a real TCP socket
//!   exchange *only* the objects the receiver lacks (asserted via backend
//!   object counts);
//! * an 8-replica `ChannelTransport` fleet with injected partitions and
//!   message loss converges after heal — on the in-memory backend, the
//!   on-disk segment backend, and a mixed fleet of both;
//! * a proptest: for **any** operation schedule and **any** partition
//!   schedule, post-heal anti-entropy converges all replicas to identical
//!   heads (byte-identical canonical states), over both backends;
//! * a corrupted transfer is rejected by content verification and leaves
//!   the receiving store untouched.

mod common;

use common::{for_each_backend, Scratch};
use peepul::net::{
    AntiEntropy, ChannelTransport, Cluster, FaultInjector, NetError, Remote, Replica, TcpServer,
    TcpTransport, Transport,
};
use peepul::prelude::*;
use peepul::store::{SegmentBackend, SegmentOptions};
use peepul::types::counter::CounterOp;
use peepul::types::or_set_space::{OrSetOp, OrSetSpace};
use proptest::prelude::*;

type DynBackend = Box<dyn Backend + Send + Sync>;

fn memory() -> DynBackend {
    Box::new(MemoryBackend::new())
}

fn segment(scratch: &Scratch, n: u32) -> DynBackend {
    Box::new(
        SegmentBackend::open_with(
            scratch.path().join(n.to_string()),
            SegmentOptions {
                durable: false,
                ..SegmentOptions::default()
            },
        )
        .expect("open segment backend"),
    )
}

/// Builds a replica over its own store with a disjoint replica-id range.
fn replica<B: Backend>(name: &str, backend: B, base: u32) -> Replica<OrSetSpace<u32>, B> {
    let store = BranchStore::with_backend_and_base("main", backend, base << 16)
        .expect("store construction");
    Replica::new(name, store)
}

#[test]
fn tcp_pair_exchanges_only_missing_objects() {
    // Server replica with real history: adds, a fork, a merge.
    let origin = replica("origin", MemoryBackend::new(), 0);
    origin
        .with_store(|s| -> Result<(), StoreError> {
            for x in 0..5u32 {
                s.branch_mut("main")?.apply(&OrSetOp::Add(x))?;
            }
            s.branch_mut("main")?.fork("feature")?;
            s.branch_mut("feature")?.apply(&OrSetOp::Add(100))?;
            s.branch_mut("main")?.apply(&OrSetOp::Remove(0))?;
            s.branch_mut("main")?.merge_from("feature")?;
            Ok(())
        })
        .unwrap();
    let origin_objects = origin.object_count();
    let server = TcpServer::spawn(origin.clone()).unwrap();

    // Independent client store with divergent local history.
    let laptop = replica("laptop", MemoryBackend::new(), 1);
    laptop
        .with_store(|s| s.branch_mut("main").unwrap().apply(&OrSetOp::Add(777)))
        .unwrap();

    let mut remote = Remote::new("origin", TcpTransport::connect(server.addr()).unwrap());
    let before = laptop.object_count();
    let fetch = laptop.fetch(&mut remote, "main").unwrap();

    // The transfer is *exactly* the objects the client lacked: every
    // received object is new to the backend, nothing was re-sent.
    assert!(!fetch.up_to_date);
    assert_eq!(fetch.round_trips, 3, "refs + want/have + states");
    assert_eq!(
        laptop.object_count(),
        before + fetch.objects_received() as usize,
        "received objects are precisely the backend growth"
    );
    // The shared root commit + root state were never transferred.
    assert!(
        (fetch.objects_received() as usize) < origin_objects,
        "common history is excluded from the transfer"
    );

    // Re-fetching is free: the client now has the remote head.
    let again = laptop.fetch(&mut remote, "main").unwrap();
    assert!(again.up_to_date);
    assert_eq!(again.round_trips, 1, "refs only");
    assert_eq!(again.objects_received(), 0);

    // Pull to integrate (three-way merge of the divergent histories)…
    let pull = laptop.pull(&mut remote, "main").unwrap();
    assert_eq!(pull.outcome, peepul::net::PullOutcome::Merged);
    let lookup = laptop
        .read("main", &peepul::types::or_set::OrSetQuery::Lookup(777))
        .unwrap();
    assert_eq!(
        lookup,
        peepul::types::or_set::OrSetOutput::Present(true),
        "local work survives the merge"
    );

    // …and push the merge back: the server is strictly behind, so this is
    // a fast-forward, and afterwards both stores hold identical object
    // sets.
    let push = laptop.push(&mut remote, "main").unwrap();
    assert!(push.commits_sent > 0);
    assert_eq!(origin.object_count(), laptop.object_count());
    assert_eq!(
        origin.head_id("main").unwrap(),
        laptop.head_id("main").unwrap(),
        "byte-identical Merkle heads across two stores over TCP"
    );

    // A second push has nothing left to say.
    let push = laptop.push(&mut remote, "main").unwrap();
    assert_eq!(push.commits_sent, 0);
    assert_eq!(push.states_sent, 0);
}

#[test]
fn push_to_diverged_peer_is_rejected() {
    let origin = replica("origin", MemoryBackend::new(), 0);
    let server = TcpServer::spawn(origin.clone()).unwrap();
    let laptop = replica("laptop", MemoryBackend::new(), 1);

    // Both sides commit concurrently.
    origin
        .with_store(|s| s.branch_mut("main").unwrap().apply(&OrSetOp::Add(1)))
        .unwrap();
    laptop
        .with_store(|s| s.branch_mut("main").unwrap().apply(&OrSetOp::Add(2)))
        .unwrap();

    let mut remote = Remote::new("origin", TcpTransport::connect(server.addr()).unwrap());
    let err = laptop.push(&mut remote, "main").unwrap_err();
    assert!(matches!(err, NetError::PushRejected), "{err}");

    // Pull-merge-push resolves it, like Git.
    laptop.pull(&mut remote, "main").unwrap();
    laptop.push(&mut remote, "main").unwrap();
    assert_eq!(
        origin.head_id("main").unwrap(),
        laptop.head_id("main").unwrap()
    );
}

/// Regression: a **rejected** push must not leave its transferred objects
/// behind. Before the divergence pre-check, the server ingested the whole
/// pack and only then discovered the branch had diverged — every denied
/// retry of a hammering client grew the backend with commits no ref
/// would ever reach.
#[test]
fn rejected_push_lands_no_objects_and_gc_finds_no_garbage() {
    let origin = replica("origin", MemoryBackend::new(), 0);
    let server = TcpServer::spawn(origin.clone()).unwrap();
    let laptop = replica("laptop", MemoryBackend::new(), 1);

    origin
        .with_store(|s| s.branch_mut("main").unwrap().apply(&OrSetOp::Add(1)))
        .unwrap();
    // Give the diverged client some weight: several commits that would
    // all have been transferred (and stranded) by the old code.
    laptop
        .with_store(|s| -> Result<(), StoreError> {
            for x in 10..20u32 {
                s.branch_mut("main")?.apply(&OrSetOp::Add(x))?;
            }
            Ok(())
        })
        .unwrap();

    let before = origin.object_count();
    let mut remote = Remote::new("origin", TcpTransport::connect(server.addr()).unwrap());
    for _ in 0..3 {
        // A hammering client: every retry must bounce off equally clean.
        let err = laptop.push(&mut remote, "main").unwrap_err();
        assert!(matches!(err, NetError::PushRejected), "{err}");
        assert_eq!(
            origin.object_count(),
            before,
            "a denied push must not grow the server's backend"
        );
    }

    // And the server's own GC agrees there is nothing to reclaim: every
    // stored object is still reachable from a ref.
    let swept = origin
        .with_store(|s| s.collect_garbage())
        .expect("gc over the server store");
    assert_eq!(swept.dead_objects, 0, "rejected pushes left garbage");
    assert_eq!(origin.object_count(), before);
}

/// The headline acceptance scenario: an 8-replica fleet with partitions
/// and message loss converges after heal — over memory and segment
/// backends alike.
#[test]
fn eight_replica_fleet_converges_after_partition_heal() {
    for_each_backend("fleet-8", |kind, make| {
        let cluster: Cluster<Counter, DynBackend> =
            Cluster::replicated((0..8).map(|_| make()).collect()).unwrap();
        assert!(cluster.is_replicated());

        // Replicas 2 and 5 are partitioned for the whole run; link 0 drops
        // its first gossip attempts; link 3 loses 20% of messages.
        cluster.faults(2).unwrap().partition();
        cluster.faults(5).unwrap().partition();
        cluster.faults(0).unwrap().drop_requests(3);
        cluster.faults(3).unwrap().set_loss(200, 0xfee1_600d);

        cluster.run(30, 5, |_, _| CounterOp::Increment).unwrap();

        // While partitioned, converge() must refuse to pretend.
        assert!(
            cluster.converge().is_err(),
            "{kind}: honest non-convergence"
        );

        // Heal everything; anti-entropy repairs the fleet.
        cluster.faults(2).unwrap().heal();
        cluster.faults(5).unwrap().heal();
        cluster.faults(3).unwrap().set_loss(0, 0);
        let states = cluster.converge().unwrap();
        assert_eq!(states.len(), 8);
        for s in &states {
            assert_eq!(s.count(), 8 * 30, "{kind}: no increment lost or duplicated");
        }
        // Identical heads: byte-identical canonical states *and* equal
        // Merkle histories on every replica.
        let head0 = cluster.node(0).unwrap().head_id("main").unwrap();
        let state0 = cluster.node(0).unwrap().state_id("main").unwrap();
        for i in 1..8 {
            let node = cluster.node(i).unwrap();
            assert_eq!(node.head_id("main").unwrap(), head0, "{kind}");
            assert_eq!(node.state_id("main").unwrap(), state0, "{kind}");
        }
    });
}

#[test]
fn mixed_memory_segment_fleet_converges() {
    let scratch = Scratch::new("mixed-fleet");
    let backends: Vec<DynBackend> = vec![
        memory(),
        segment(&scratch, 1),
        memory(),
        segment(&scratch, 3),
    ];
    let cluster: Cluster<OrSetSpace<u32>, DynBackend> = Cluster::replicated(backends).unwrap();
    cluster.faults(1).unwrap().partition();
    cluster
        .run(24, 6, |replica, round| {
            let x = ((replica * 13 + round * 5) % 24) as u32;
            if round % 4 == 3 {
                OrSetOp::Remove(x)
            } else {
                OrSetOp::Add(x)
            }
        })
        .unwrap();
    cluster.faults(1).unwrap().heal();
    let states = cluster.converge().unwrap();
    for s in &states[1..] {
        assert!(states[0].observably_equal(s));
    }
    // The on-disk replicas persisted the same canonical bytes the
    // in-memory ones hold.
    let id0 = cluster.node(0).unwrap().state_id("main").unwrap();
    for i in 1..4 {
        assert_eq!(cluster.node(i).unwrap().state_id("main").unwrap(), id0);
    }
}

// ---------------------------------------------------------------------
// The codec unification lifted the 10-type restriction: the four types
// that previously had no decodable encoding — the AVL-tree-backed
// OR-set-spacetime (which exercises the `AvlMap` codec), the α-map, and
// the chat composition — now replicate through the same fetch/pull/push
// machinery as everything else. One test per type, each asserting
// converged heads (not just states) across two independent stores.
// ---------------------------------------------------------------------

/// Pulls both ways until both replicas hold the same head.
fn sync_pair<M: peepul::core::Mrdt + Send + Sync + 'static>(
    a: &Replica<M, MemoryBackend>,
    b: &Replica<M, MemoryBackend>,
) {
    let mut to_b = Remote::new(b.name(), ChannelTransport::connect(b.clone()));
    let mut to_a = Remote::new(a.name(), ChannelTransport::connect(a.clone()));
    a.pull(&mut to_b, "main").unwrap();
    b.pull(&mut to_a, "main").unwrap();
    a.pull(&mut to_b, "main").unwrap();
    assert_eq!(
        a.head_id("main").unwrap(),
        b.head_id("main").unwrap(),
        "pair must converge to one head commit"
    );
}

#[test]
fn or_set_spacetime_replicates_across_stores() {
    use peepul::types::or_set::{OrSetOutput, OrSetQuery};
    use peepul::types::or_set_spacetime::OrSetSpacetime;

    let a: Replica<OrSetSpacetime<u32>, _> =
        Replica::open("a", "main", MemoryBackend::new()).unwrap();
    let b: Replica<OrSetSpacetime<u32>, _> =
        Replica::open("b", "main", MemoryBackend::new()).unwrap();
    a.with_store(|s| -> Result<(), StoreError> {
        for x in 0..40u32 {
            s.branch_mut("main")?.apply(&OrSetOp::Add(x))?;
        }
        s.branch_mut("main")?.apply(&OrSetOp::Remove(7))?;
        Ok(())
    })
    .unwrap();
    b.with_store(|s| -> Result<(), StoreError> {
        for x in 30..60u32 {
            s.branch_mut("main")?.apply(&OrSetOp::Add(x))?;
        }
        // Concurrent with a's remove of 7: add-wins must keep it.
        s.branch_mut("main")?.apply(&OrSetOp::Add(7))?;
        Ok(())
    })
    .unwrap();
    sync_pair(&a, &b);
    let OrSetOutput::Elements(ea) = a.read("main", &OrSetQuery::Read).unwrap() else {
        panic!("read returns elements")
    };
    let OrSetOutput::Elements(eb) = b.read("main", &OrSetQuery::Read).unwrap() else {
        panic!("read returns elements")
    };
    assert_eq!(ea, eb);
    assert!(ea.contains(&7), "add-wins across replication");
    assert_eq!(ea.len(), 60);
}

#[test]
fn g_map_of_counters_replicates_across_stores() {
    use peepul::types::counter::{Counter, CounterQuery};
    use peepul::types::map::{MapOp, MapQuery, MrdtMap};

    let a: Replica<MrdtMap<Counter>, _> = Replica::open("a", "main", MemoryBackend::new()).unwrap();
    let b: Replica<MrdtMap<Counter>, _> = Replica::open("b", "main", MemoryBackend::new()).unwrap();
    let bump = |key: &str| MapOp::Set(key.to_owned(), CounterOp::Increment);
    a.with_store(|s| -> Result<(), StoreError> {
        for _ in 0..3 {
            s.branch_mut("main")?.apply(&bump("shared"))?;
        }
        s.branch_mut("main")?.apply(&bump("only-a"))?;
        Ok(())
    })
    .unwrap();
    b.with_store(|s| -> Result<(), StoreError> {
        for _ in 0..2 {
            s.branch_mut("main")?.apply(&bump("shared"))?;
        }
        s.branch_mut("main")?.apply(&bump("only-b"))?;
        Ok(())
    })
    .unwrap();
    sync_pair(&a, &b);
    for (key, want) in [("shared", 5), ("only-a", 1), ("only-b", 1), ("ghost", 0)] {
        let q = MapQuery::Get(key.to_owned(), CounterQuery::Value);
        assert_eq!(a.read("main", &q).unwrap(), want, "{key} on a");
        assert_eq!(b.read("main", &q).unwrap(), want, "{key} on b");
    }
}

#[test]
fn chat_replicates_across_stores() {
    use peepul::types::chat::{Chat, ChatOp, ChatQuery};

    let a: Replica<Chat, _> = Replica::open("a", "main", MemoryBackend::new()).unwrap();
    let b: Replica<Chat, _> = Replica::open("b", "main", MemoryBackend::new()).unwrap();
    let send = |ch: &str, m: &str| ChatOp::Send(ch.to_owned(), m.to_owned());
    a.with_store(|s| -> Result<(), StoreError> {
        s.branch_mut("main")?
            .apply(&send("#rust", "hello from a"))?;
        s.branch_mut("main")?.apply(&send("#a-only", "private"))?;
        Ok(())
    })
    .unwrap();
    b.with_store(|s| -> Result<(), StoreError> {
        s.branch_mut("main")?
            .apply(&send("#rust", "hello from b"))?;
        Ok(())
    })
    .unwrap();
    sync_pair(&a, &b);
    let msgs_a = a.read("main", &ChatQuery::Read("#rust".into())).unwrap();
    let msgs_b = b.read("main", &ChatQuery::Read("#rust".into())).unwrap();
    assert_eq!(msgs_a, msgs_b);
    assert_eq!(msgs_a.len(), 2, "both posts survive the merge");
    assert_eq!(
        a.read("main", &ChatQuery::Read("#a-only".into()))
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        b.read("main", &ChatQuery::Read("#a-only".into()))
            .unwrap()
            .len(),
        1,
        "channel created on a reached b"
    );
}

#[test]
fn replica_open_survives_a_process_restart_on_disk() {
    use peepul::types::or_set::{OrSetOutput, OrSetQuery};

    let scratch = Scratch::new("replica-restart");
    let dir = scratch.path().join("db");
    let open_backend = || {
        SegmentBackend::open_with(
            &dir,
            SegmentOptions {
                durable: false,
                ..SegmentOptions::default()
            },
        )
    };

    // First life: create, write, replicate a little, die.
    let (head, tick) = {
        let a: Replica<OrSetSpace<u32>, _> =
            Replica::open("durable", "main", open_backend().unwrap()).unwrap();
        a.with_store(|s| -> Result<(), StoreError> {
            for x in 0..10u32 {
                s.branch_mut("main")?.apply(&OrSetOp::Add(x))?;
            }
            s.branch_mut("main")?.apply(&OrSetOp::Remove(3))?;
            Ok(())
        })
        .unwrap();
        a.with_store(|s| s.flush()).unwrap();
        (a.head_id("main").unwrap(), a.with_store(|s| s.tick()))
    };

    // Second life: the same call site reopens the typed store instead of
    // resetting it — full history, clock and branch intact.
    let a: Replica<OrSetSpace<u32>, _> =
        Replica::open("durable", "main", open_backend().unwrap()).unwrap();
    assert_eq!(
        a.head_id("main").unwrap(),
        head,
        "head survived the restart"
    );
    assert_eq!(a.with_store(|s| s.tick()), tick, "clock survived");
    let OrSetOutput::Elements(elems) = a.read("main", &OrSetQuery::Read).unwrap() else {
        panic!("read returns elements")
    };
    assert_eq!(elems.len(), 9);
    assert!(!elems.contains(&3));

    // …and it replicates immediately: a fresh peer pulls the whole
    // recovered history.
    let b: Replica<OrSetSpace<u32>, _> = Replica::open("b", "main", MemoryBackend::new()).unwrap();
    let mut remote = Remote::new("durable", ChannelTransport::connect(a.clone()));
    b.pull(&mut remote, "main").unwrap();
    assert_eq!(b.head_id("main").unwrap(), head);

    // A reopened backend that lacks the requested branch is refused.
    let err = Replica::<OrSetSpace<u32>, _>::open("durable", "nope", open_backend().unwrap())
        .unwrap_err();
    assert!(matches!(err, StoreError::UnknownBranch(_)), "{err}");
}

#[test]
fn newly_wired_types_run_in_replicated_clusters() {
    use peepul::types::or_set_spacetime::OrSetSpacetime;

    // The Cluster harness (real replication mode) now accepts the
    // tree-backed set — previously excluded by the `Wire` bound.
    let cluster: Cluster<OrSetSpacetime<u32>> = Cluster::new(3).unwrap();
    cluster
        .run(30, 5, |replica, round| {
            let x = ((replica * 17 + round * 3) % 20) as u32;
            if round % 5 == 4 {
                OrSetOp::Remove(x)
            } else {
                OrSetOp::Add(x)
            }
        })
        .unwrap();
    let states = cluster.converge().unwrap();
    for s in &states[1..] {
        assert!(states[0].observably_equal(s));
    }
}

/// A transport that corrupts one byte of every response — the content
/// verification on ingest must reject the transfer and leave the store
/// untouched.
struct CorruptingTransport<T>(T);

impl<T: Transport> Transport for CorruptingTransport<T> {
    fn request(&mut self, request: &[u8]) -> Result<Vec<u8>, NetError> {
        let mut resp = self.0.request(request)?;
        if let Some(last) = resp.last_mut() {
            *last ^= 0x01;
        }
        Ok(resp)
    }
}

#[test]
fn corrupted_transfers_are_rejected_and_change_nothing() {
    let origin = replica("origin", MemoryBackend::new(), 0);
    origin
        .with_store(|s| -> Result<(), StoreError> {
            for x in 0..4u32 {
                s.branch_mut("main")?.apply(&OrSetOp::Add(x))?;
            }
            Ok(())
        })
        .unwrap();

    let laptop = replica("laptop", MemoryBackend::new(), 1);
    let objects_before = laptop.object_count();
    let branches_before = laptop.with_store(|s| s.branch_names().len());

    let mut evil = Remote::new(
        "origin",
        CorruptingTransport(ChannelTransport::connect(origin.clone())),
    );
    let err = laptop.fetch(&mut evil, "main").unwrap_err();
    assert!(
        matches!(
            err,
            NetError::Store(StoreError::CorruptObject { .. })
                | NetError::Protocol(_)
                | NetError::BadFrame(_)
        ),
        "corruption must be caught, got: {err}"
    );
    assert_eq!(laptop.object_count(), objects_before, "nothing ingested");
    assert_eq!(
        laptop.with_store(|s| s.branch_names().len()),
        branches_before,
        "no tracking branch landed"
    );

    // The same fetch over a clean link succeeds.
    let mut clean = Remote::new("origin", ChannelTransport::connect(origin.clone()));
    laptop.fetch(&mut clean, "main").unwrap();
    assert!(laptop.object_count() > objects_before);
}

// ---------------------------------------------------------------------------
// Proptest: any op schedule + any partition schedule converges post-heal
// ---------------------------------------------------------------------------

const FLEET: usize = 3;

#[derive(Clone, Debug)]
enum Event {
    /// Replica applies a local operation.
    Op(u8, OrSetOp<u8>),
    /// Replica a pulls from replica b (skipped while either is cut off).
    Pull(u8, u8),
    /// Cut a replica's interface.
    Partition(u8),
    /// Restore it.
    Heal(u8),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    let op = (0u8..8, 0u8..2).prop_map(|(x, kind)| {
        if kind == 0 {
            OrSetOp::Add(x)
        } else {
            OrSetOp::Remove(x)
        }
    });
    prop_oneof![
        4 => (any::<u8>(), op).prop_map(|(r, op)| Event::Op(r, op)),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Event::Pull(a, b)),
        1 => any::<u8>().prop_map(Event::Partition),
        1 => any::<u8>().prop_map(Event::Heal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any interleaving of operations, pulls, partitions and heals:
    /// after healing, anti-entropy drives all replicas to identical heads
    /// — byte-identical canonical states — on both backends.
    #[test]
    fn post_heal_anti_entropy_converges(
        events in proptest::collection::vec(event_strategy(), 1..40),
    ) {
        for_each_backend("ae-prop", |kind, make| {
            let replicas: Vec<Replica<OrSetSpace<u8>, DynBackend>> = (0..FLEET)
                .map(|i| {
                    let store = BranchStore::with_backend_and_base(
                        "main",
                        make(),
                        (i as u32) << 16,
                    )
                    .expect("store construction");
                    Replica::new(format!("replica-{i}"), store)
                })
                .collect();
            let faults: Vec<FaultInjector> =
                (0..FLEET).map(|_| FaultInjector::new()).collect();

            for ev in &events {
                match ev {
                    Event::Op(r, op) => {
                        let r = *r as usize % FLEET;
                        replicas[r]
                            .with_store(|s| s.branch_mut("main").unwrap().apply(op))
                            .unwrap();
                    }
                    Event::Pull(a, b) => {
                        let (a, b) = (*a as usize % FLEET, *b as usize % FLEET);
                        if a == b || faults[b].is_partitioned() {
                            continue;
                        }
                        let transport = ChannelTransport::with_faults(
                            replicas[b].clone(),
                            faults[a].clone(),
                        );
                        let mut remote = Remote::new(replicas[b].name(), transport);
                        match replicas[a].pull(&mut remote, "main") {
                            Ok(_) | Err(NetError::Dropped | NetError::Partitioned) => {}
                            Err(e) => panic!("{kind}: pull failed: {e}"),
                        }
                    }
                    Event::Partition(r) => faults[*r as usize % FLEET].partition(),
                    Event::Heal(r) => faults[*r as usize % FLEET].heal(),
                }
            }

            // Heal the world; anti-entropy must finish the job.
            for f in &faults {
                f.heal();
            }
            let report = AntiEntropy::new().run(&replicas, "main").unwrap();
            assert!(report.converged, "{kind}: {report:?}");
            let head0 = replicas[0].head_id("main").unwrap();
            let state0 = replicas[0].state_id("main").unwrap();
            for r in &replicas[1..] {
                assert_eq!(r.head_id("main").unwrap(), head0, "{kind}");
                assert_eq!(r.state_id("main").unwrap(), state0, "{kind}");
                assert!(
                    replicas[0]
                        .state("main")
                        .unwrap()
                        .observably_equal(&r.state("main").unwrap()),
                    "{kind}"
                );
            }
        });
    }
}

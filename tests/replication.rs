//! True multi-store replication, end to end: the `peepul-net` acceptance
//! suite.
//!
//! What is checked here, nowhere else:
//!
//! * two **independent** `BranchStore`s connected by a real TCP socket
//!   exchange *only* the objects the receiver lacks (asserted via backend
//!   object counts);
//! * an 8-replica `ChannelTransport` fleet with injected partitions and
//!   message loss converges after heal — on the in-memory backend, the
//!   on-disk segment backend, and a mixed fleet of both;
//! * a proptest: for **any** operation schedule and **any** partition
//!   schedule, post-heal anti-entropy converges all replicas to identical
//!   heads (byte-identical canonical states), over both backends;
//! * a corrupted transfer is rejected by content verification and leaves
//!   the receiving store untouched.

mod common;

use common::{for_each_backend, Scratch};
use peepul::net::{
    AntiEntropy, ChannelTransport, Cluster, FaultInjector, NetError, Remote, Replica, TcpServer,
    TcpTransport, Transport,
};
use peepul::prelude::*;
use peepul::store::{SegmentBackend, SegmentOptions};
use peepul::types::counter::CounterOp;
use peepul::types::or_set_space::{OrSetOp, OrSetSpace};
use proptest::prelude::*;

type DynBackend = Box<dyn Backend + Send>;

fn memory() -> DynBackend {
    Box::new(MemoryBackend::new())
}

fn segment(scratch: &Scratch, n: u32) -> DynBackend {
    Box::new(
        SegmentBackend::open_with(
            scratch.path().join(n.to_string()),
            SegmentOptions { durable: false },
        )
        .expect("open segment backend"),
    )
}

/// Builds a replica over its own store with a disjoint replica-id range.
fn replica<B: Backend>(name: &str, backend: B, base: u32) -> Replica<OrSetSpace<u32>, B> {
    let store = BranchStore::with_backend_and_base("main", backend, base << 16)
        .expect("store construction");
    Replica::new(name, store)
}

#[test]
fn tcp_pair_exchanges_only_missing_objects() {
    // Server replica with real history: adds, a fork, a merge.
    let origin = replica("origin", MemoryBackend::new(), 0);
    origin
        .with_store(|s| -> Result<(), StoreError> {
            for x in 0..5u32 {
                s.branch_mut("main")?.apply(&OrSetOp::Add(x))?;
            }
            s.branch_mut("main")?.fork("feature")?;
            s.branch_mut("feature")?.apply(&OrSetOp::Add(100))?;
            s.branch_mut("main")?.apply(&OrSetOp::Remove(0))?;
            s.branch_mut("main")?.merge_from("feature")?;
            Ok(())
        })
        .unwrap();
    let origin_objects = origin.object_count();
    let server = TcpServer::spawn(origin.clone()).unwrap();

    // Independent client store with divergent local history.
    let laptop = replica("laptop", MemoryBackend::new(), 1);
    laptop
        .with_store(|s| s.branch_mut("main").unwrap().apply(&OrSetOp::Add(777)))
        .unwrap();

    let mut remote = Remote::new("origin", TcpTransport::connect(server.addr()).unwrap());
    let before = laptop.object_count();
    let fetch = laptop.fetch(&mut remote, "main").unwrap();

    // The transfer is *exactly* the objects the client lacked: every
    // received object is new to the backend, nothing was re-sent.
    assert!(!fetch.up_to_date);
    assert_eq!(fetch.round_trips, 3, "refs + want/have + states");
    assert_eq!(
        laptop.object_count(),
        before + fetch.objects_received() as usize,
        "received objects are precisely the backend growth"
    );
    // The shared root commit + root state were never transferred.
    assert!(
        (fetch.objects_received() as usize) < origin_objects,
        "common history is excluded from the transfer"
    );

    // Re-fetching is free: the client now has the remote head.
    let again = laptop.fetch(&mut remote, "main").unwrap();
    assert!(again.up_to_date);
    assert_eq!(again.round_trips, 1, "refs only");
    assert_eq!(again.objects_received(), 0);

    // Pull to integrate (three-way merge of the divergent histories)…
    let pull = laptop.pull(&mut remote, "main").unwrap();
    assert_eq!(pull.outcome, peepul::net::PullOutcome::Merged);
    let lookup = laptop
        .read("main", &peepul::types::or_set::OrSetQuery::Lookup(777))
        .unwrap();
    assert_eq!(
        lookup,
        peepul::types::or_set::OrSetOutput::Present(true),
        "local work survives the merge"
    );

    // …and push the merge back: the server is strictly behind, so this is
    // a fast-forward, and afterwards both stores hold identical object
    // sets.
    let push = laptop.push(&mut remote, "main").unwrap();
    assert!(push.commits_sent > 0);
    assert_eq!(origin.object_count(), laptop.object_count());
    assert_eq!(
        origin.head_id("main").unwrap(),
        laptop.head_id("main").unwrap(),
        "byte-identical Merkle heads across two stores over TCP"
    );

    // A second push has nothing left to say.
    let push = laptop.push(&mut remote, "main").unwrap();
    assert_eq!(push.commits_sent, 0);
    assert_eq!(push.states_sent, 0);
}

#[test]
fn push_to_diverged_peer_is_rejected() {
    let origin = replica("origin", MemoryBackend::new(), 0);
    let server = TcpServer::spawn(origin.clone()).unwrap();
    let laptop = replica("laptop", MemoryBackend::new(), 1);

    // Both sides commit concurrently.
    origin
        .with_store(|s| s.branch_mut("main").unwrap().apply(&OrSetOp::Add(1)))
        .unwrap();
    laptop
        .with_store(|s| s.branch_mut("main").unwrap().apply(&OrSetOp::Add(2)))
        .unwrap();

    let mut remote = Remote::new("origin", TcpTransport::connect(server.addr()).unwrap());
    let err = laptop.push(&mut remote, "main").unwrap_err();
    assert!(matches!(err, NetError::PushRejected), "{err}");

    // Pull-merge-push resolves it, like Git.
    laptop.pull(&mut remote, "main").unwrap();
    laptop.push(&mut remote, "main").unwrap();
    assert_eq!(
        origin.head_id("main").unwrap(),
        laptop.head_id("main").unwrap()
    );
}

/// The headline acceptance scenario: an 8-replica fleet with partitions
/// and message loss converges after heal — over memory and segment
/// backends alike.
#[test]
fn eight_replica_fleet_converges_after_partition_heal() {
    for_each_backend("fleet-8", |kind, make| {
        let cluster: Cluster<Counter, DynBackend> =
            Cluster::replicated((0..8).map(|_| make()).collect()).unwrap();
        assert!(cluster.is_replicated());

        // Replicas 2 and 5 are partitioned for the whole run; link 0 drops
        // its first gossip attempts; link 3 loses 20% of messages.
        cluster.faults(2).unwrap().partition();
        cluster.faults(5).unwrap().partition();
        cluster.faults(0).unwrap().drop_requests(3);
        cluster.faults(3).unwrap().set_loss(200, 0xfee1_600d);

        cluster.run(30, 5, |_, _| CounterOp::Increment).unwrap();

        // While partitioned, converge() must refuse to pretend.
        assert!(
            cluster.converge().is_err(),
            "{kind}: honest non-convergence"
        );

        // Heal everything; anti-entropy repairs the fleet.
        cluster.faults(2).unwrap().heal();
        cluster.faults(5).unwrap().heal();
        cluster.faults(3).unwrap().set_loss(0, 0);
        let states = cluster.converge().unwrap();
        assert_eq!(states.len(), 8);
        for s in &states {
            assert_eq!(s.count(), 8 * 30, "{kind}: no increment lost or duplicated");
        }
        // Identical heads: byte-identical canonical states *and* equal
        // Merkle histories on every replica.
        let head0 = cluster.node(0).unwrap().head_id("main").unwrap();
        let state0 = cluster.node(0).unwrap().state_id("main").unwrap();
        for i in 1..8 {
            let node = cluster.node(i).unwrap();
            assert_eq!(node.head_id("main").unwrap(), head0, "{kind}");
            assert_eq!(node.state_id("main").unwrap(), state0, "{kind}");
        }
    });
}

#[test]
fn mixed_memory_segment_fleet_converges() {
    let scratch = Scratch::new("mixed-fleet");
    let backends: Vec<DynBackend> = vec![
        memory(),
        segment(&scratch, 1),
        memory(),
        segment(&scratch, 3),
    ];
    let cluster: Cluster<OrSetSpace<u32>, DynBackend> = Cluster::replicated(backends).unwrap();
    cluster.faults(1).unwrap().partition();
    cluster
        .run(24, 6, |replica, round| {
            let x = ((replica * 13 + round * 5) % 24) as u32;
            if round % 4 == 3 {
                OrSetOp::Remove(x)
            } else {
                OrSetOp::Add(x)
            }
        })
        .unwrap();
    cluster.faults(1).unwrap().heal();
    let states = cluster.converge().unwrap();
    for s in &states[1..] {
        assert!(states[0].observably_equal(s));
    }
    // The on-disk replicas persisted the same canonical bytes the
    // in-memory ones hold.
    let id0 = cluster.node(0).unwrap().state_id("main").unwrap();
    for i in 1..4 {
        assert_eq!(cluster.node(i).unwrap().state_id("main").unwrap(), id0);
    }
}

/// A transport that corrupts one byte of every response — the content
/// verification on ingest must reject the transfer and leave the store
/// untouched.
struct CorruptingTransport<T>(T);

impl<T: Transport> Transport for CorruptingTransport<T> {
    fn request(&mut self, request: &[u8]) -> Result<Vec<u8>, NetError> {
        let mut resp = self.0.request(request)?;
        if let Some(last) = resp.last_mut() {
            *last ^= 0x01;
        }
        Ok(resp)
    }
}

#[test]
fn corrupted_transfers_are_rejected_and_change_nothing() {
    let origin = replica("origin", MemoryBackend::new(), 0);
    origin
        .with_store(|s| -> Result<(), StoreError> {
            for x in 0..4u32 {
                s.branch_mut("main")?.apply(&OrSetOp::Add(x))?;
            }
            Ok(())
        })
        .unwrap();

    let laptop = replica("laptop", MemoryBackend::new(), 1);
    let objects_before = laptop.object_count();
    let branches_before = laptop.with_store(|s| s.branch_names().len());

    let mut evil = Remote::new(
        "origin",
        CorruptingTransport(ChannelTransport::connect(origin.clone())),
    );
    let err = laptop.fetch(&mut evil, "main").unwrap_err();
    assert!(
        matches!(
            err,
            NetError::Store(StoreError::CorruptObject { .. })
                | NetError::Protocol(_)
                | NetError::BadFrame(_)
        ),
        "corruption must be caught, got: {err}"
    );
    assert_eq!(laptop.object_count(), objects_before, "nothing ingested");
    assert_eq!(
        laptop.with_store(|s| s.branch_names().len()),
        branches_before,
        "no tracking branch landed"
    );

    // The same fetch over a clean link succeeds.
    let mut clean = Remote::new("origin", ChannelTransport::connect(origin.clone()));
    laptop.fetch(&mut clean, "main").unwrap();
    assert!(laptop.object_count() > objects_before);
}

// ---------------------------------------------------------------------------
// Proptest: any op schedule + any partition schedule converges post-heal
// ---------------------------------------------------------------------------

const FLEET: usize = 3;

#[derive(Clone, Debug)]
enum Event {
    /// Replica applies a local operation.
    Op(u8, OrSetOp<u8>),
    /// Replica a pulls from replica b (skipped while either is cut off).
    Pull(u8, u8),
    /// Cut a replica's interface.
    Partition(u8),
    /// Restore it.
    Heal(u8),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    let op = (0u8..8, 0u8..2).prop_map(|(x, kind)| {
        if kind == 0 {
            OrSetOp::Add(x)
        } else {
            OrSetOp::Remove(x)
        }
    });
    prop_oneof![
        4 => (any::<u8>(), op).prop_map(|(r, op)| Event::Op(r, op)),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Event::Pull(a, b)),
        1 => any::<u8>().prop_map(Event::Partition),
        1 => any::<u8>().prop_map(Event::Heal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any interleaving of operations, pulls, partitions and heals:
    /// after healing, anti-entropy drives all replicas to identical heads
    /// — byte-identical canonical states — on both backends.
    #[test]
    fn post_heal_anti_entropy_converges(
        events in proptest::collection::vec(event_strategy(), 1..40),
    ) {
        for_each_backend("ae-prop", |kind, make| {
            let replicas: Vec<Replica<OrSetSpace<u8>, DynBackend>> = (0..FLEET)
                .map(|i| {
                    let store = BranchStore::with_backend_and_base(
                        "main",
                        make(),
                        (i as u32) << 16,
                    )
                    .expect("store construction");
                    Replica::new(format!("replica-{i}"), store)
                })
                .collect();
            let faults: Vec<FaultInjector> =
                (0..FLEET).map(|_| FaultInjector::new()).collect();

            for ev in &events {
                match ev {
                    Event::Op(r, op) => {
                        let r = *r as usize % FLEET;
                        replicas[r]
                            .with_store(|s| s.branch_mut("main").unwrap().apply(op))
                            .unwrap();
                    }
                    Event::Pull(a, b) => {
                        let (a, b) = (*a as usize % FLEET, *b as usize % FLEET);
                        if a == b || faults[b].is_partitioned() {
                            continue;
                        }
                        let transport = ChannelTransport::with_faults(
                            replicas[b].clone(),
                            faults[a].clone(),
                        );
                        let mut remote = Remote::new(replicas[b].name(), transport);
                        match replicas[a].pull(&mut remote, "main") {
                            Ok(_) | Err(NetError::Dropped | NetError::Partitioned) => {}
                            Err(e) => panic!("{kind}: pull failed: {e}"),
                        }
                    }
                    Event::Partition(r) => faults[*r as usize % FLEET].partition(),
                    Event::Heal(r) => faults[*r as usize % FLEET].heal(),
                }
            }

            // Heal the world; anti-entropy must finish the job.
            for f in &faults {
                f.heal();
            }
            let report = AntiEntropy::new().run(&replicas, "main").unwrap();
            assert!(report.converged, "{kind}: {report:?}");
            let head0 = replicas[0].head_id("main").unwrap();
            let state0 = replicas[0].state_id("main").unwrap();
            for r in &replicas[1..] {
                assert_eq!(r.head_id("main").unwrap(), head0, "{kind}");
                assert_eq!(r.state_id("main").unwrap(), state0, "{kind}");
                assert!(
                    replicas[0]
                        .state("main")
                        .unwrap()
                        .observably_equal(&r.state("main").unwrap()),
                    "{kind}"
                );
            }
        });
    }
}

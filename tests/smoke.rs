//! Tier-1 canary: the fastest end-to-end exercise of the store.
//!
//! One fork/apply/merge round-trip through [`BranchStore`] for three
//! representative data types — a delta-merge counter, an add-wins OR-set
//! and the replicated queue. If this file fails, nothing deeper (the
//! certification harness, the convergence properties, the benchmarks) is
//! worth reading; it is deliberately free of randomness and finishes in
//! milliseconds.

use peepul::prelude::*;
use peepul::types::counter::{CounterOp, CounterQuery};
use peepul::types::or_set::{OrSetOp, OrSetOutput, OrSetQuery};
use peepul::types::queue::{QueueOp, QueueValue};

#[test]
fn counter_fork_apply_merge() {
    let mut db: BranchStore<Counter> = BranchStore::new("main");
    db.branch_mut("main")
        .unwrap()
        .apply(&CounterOp::Increment)
        .unwrap();
    let feature = db.branch_mut("main").unwrap().fork("feature").unwrap();

    // Concurrent increments on both branches.
    db.branch_mut("main")
        .unwrap()
        .apply(&CounterOp::Increment)
        .unwrap();
    db.branch_mut(&feature)
        .unwrap()
        .transaction(|tx| {
            tx.apply(&CounterOp::Increment);
            tx.apply(&CounterOp::Increment);
        })
        .unwrap();

    db.branch_mut("main").unwrap().merge_from(&feature).unwrap();
    // 1 shared + 1 on main + 2 on feature: the delta merge loses nothing.
    assert_eq!(db.read("main", &CounterQuery::Value).unwrap(), 4);
}

#[test]
fn or_set_add_wins_across_merge() {
    let mut db: BranchStore<OrSetSpace<String>> = BranchStore::new("laptop");
    db.branch_mut("laptop")
        .unwrap()
        .apply(&OrSetOp::Add("milk".into()))
        .unwrap();
    db.branch_mut("laptop").unwrap().fork("phone").unwrap();

    // Concurrently: phone removes, laptop re-adds — add must win.
    db.branch_mut("phone")
        .unwrap()
        .apply(&OrSetOp::Remove("milk".into()))
        .unwrap();
    db.branch_mut("laptop")
        .unwrap()
        .apply(&OrSetOp::Add("milk".into()))
        .unwrap();

    db.branch_mut("laptop")
        .unwrap()
        .merge_from("phone")
        .unwrap();
    let v = db
        .read("laptop", &OrSetQuery::Lookup("milk".into()))
        .unwrap();
    assert_eq!(v, OrSetOutput::Present(true));

    // And the removal of a non-re-added element does stick.
    db.branch_mut("phone")
        .unwrap()
        .apply(&OrSetOp::Add("eggs".into()))
        .unwrap();
    db.branch_mut("laptop")
        .unwrap()
        .merge_from("phone")
        .unwrap();
    db.branch_mut("laptop")
        .unwrap()
        .apply(&OrSetOp::Remove("eggs".into()))
        .unwrap();
    db.branch_mut("laptop").unwrap().fork("tablet").unwrap();
    db.branch_mut("laptop")
        .unwrap()
        .merge_from("tablet")
        .unwrap();
    let v = db
        .read("laptop", &OrSetQuery::Lookup("eggs".into()))
        .unwrap();
    assert_eq!(v, OrSetOutput::Present(false));
}

#[test]
fn queue_merge_interleaves_in_timestamp_order() {
    let mut db: BranchStore<Queue<u32>> = BranchStore::new("a");
    db.branch_mut("a")
        .unwrap()
        .apply(&QueueOp::Enqueue(1))
        .unwrap();
    db.branch_mut("a").unwrap().fork("b").unwrap();

    // Divergent enqueues: a gets 2, then b gets 3 (later Lamport time).
    db.branch_mut("a")
        .unwrap()
        .apply(&QueueOp::Enqueue(2))
        .unwrap();
    db.branch_mut("b")
        .unwrap()
        .apply(&QueueOp::Enqueue(3))
        .unwrap();
    // b consumes the shared head concurrently.
    let v = db
        .branch_mut("b")
        .unwrap()
        .apply(&QueueOp::Dequeue)
        .unwrap();
    match v {
        QueueValue::Dequeued(Some(entry)) => assert_eq!(entry.1, 1),
        other => panic!("expected to dequeue the shared head, got {other:?}"),
    }

    db.branch_mut("a").unwrap().merge_from("b").unwrap();
    // After the merge: 1 was dequeued on b (dequeues win), and the
    // concurrent enqueues appear in timestamp order.
    let first = db
        .branch_mut("a")
        .unwrap()
        .apply(&QueueOp::Dequeue)
        .unwrap();
    let second = db
        .branch_mut("a")
        .unwrap()
        .apply(&QueueOp::Dequeue)
        .unwrap();
    let drained = db
        .branch_mut("a")
        .unwrap()
        .apply(&QueueOp::Dequeue)
        .unwrap();
    match (first, second) {
        (QueueValue::Dequeued(Some(x)), QueueValue::Dequeued(Some(y))) => {
            assert_eq!(
                (x.1, y.1),
                (2, 3),
                "merge must keep both branches' enqueues in order"
            );
        }
        other => panic!("expected two dequeues, got {other:?}"),
    }
    assert_eq!(
        drained,
        QueueValue::Dequeued(None),
        "queue must then be empty"
    );
}

/// The three types above, driven through the same fork/apply/merge shape by
/// one generic function — guards the `Mrdt`-generic store path itself
/// (monomorphization differences can't hide here).
#[test]
fn generic_store_round_trip_for_three_types() {
    fn round_trip<M: Mrdt>(ops: &[M::Op]) -> BranchStore<M> {
        let mut db: BranchStore<M> = BranchStore::new("root");
        db.branch_mut("root").unwrap().fork("left").unwrap();
        db.branch_mut("root").unwrap().fork("right").unwrap();
        for (i, op) in ops.iter().enumerate() {
            let branch = if i % 2 == 0 { "left" } else { "right" };
            db.branch_mut(branch).unwrap().apply(op).unwrap();
        }
        db.branch_mut("left").unwrap().merge_from("right").unwrap();
        db.branch_mut("right").unwrap().merge_from("left").unwrap();
        let l = db.state("left").unwrap();
        let r = db.state("right").unwrap();
        assert!(
            l.observably_equal(&r),
            "left/right disagree after bidirectional merge"
        );
        db
    }

    round_trip::<Counter>(&[CounterOp::Increment; 6]);
    round_trip::<OrSetSpace<u32>>(&[
        OrSetOp::Add(1),
        OrSetOp::Add(2),
        OrSetOp::Remove(1),
        OrSetOp::Add(3),
    ]);
    round_trip::<Queue<u32>>(&[
        QueueOp::Enqueue(10),
        QueueOp::Enqueue(20),
        QueueOp::Dequeue,
        QueueOp::Enqueue(30),
    ]);
}

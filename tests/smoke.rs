//! Tier-1 canary: the fastest end-to-end exercise of the store.
//!
//! One fork/apply/merge round-trip through [`BranchStore`] for three
//! representative data types — a delta-merge counter, an add-wins OR-set
//! and the replicated queue. If this file fails, nothing deeper (the
//! certification harness, the convergence properties, the benchmarks) is
//! worth reading; it is deliberately free of randomness and finishes in
//! milliseconds.

use peepul::prelude::*;
use peepul::types::counter::{CounterOp, CounterValue};
use peepul::types::or_set::{OrSetOp, OrSetValue};
use peepul::types::queue::{QueueOp, QueueValue};

#[test]
fn counter_fork_apply_merge() {
    let mut db: BranchStore<Counter> = BranchStore::new("main");
    db.apply("main", &CounterOp::Increment).unwrap();
    db.fork("feature", "main").unwrap();

    // Concurrent increments on both branches.
    db.apply("main", &CounterOp::Increment).unwrap();
    db.apply("feature", &CounterOp::Increment).unwrap();
    db.apply("feature", &CounterOp::Increment).unwrap();

    db.merge("main", "feature").unwrap();
    let v = db.apply("main", &CounterOp::Value).unwrap();
    // 1 shared + 1 on main + 2 on feature: the delta merge loses nothing.
    assert_eq!(v, CounterValue::Count(4));
}

#[test]
fn or_set_add_wins_across_merge() {
    let mut db: BranchStore<OrSetSpace<String>> = BranchStore::new("laptop");
    db.apply("laptop", &OrSetOp::Add("milk".into())).unwrap();
    db.fork("phone", "laptop").unwrap();

    // Concurrently: phone removes, laptop re-adds — add must win.
    db.apply("phone", &OrSetOp::Remove("milk".into())).unwrap();
    db.apply("laptop", &OrSetOp::Add("milk".into())).unwrap();

    db.merge("laptop", "phone").unwrap();
    let v = db.apply("laptop", &OrSetOp::Lookup("milk".into())).unwrap();
    assert_eq!(v, OrSetValue::Present(true));

    // And the removal of a non-re-added element does stick.
    db.apply("phone", &OrSetOp::Add("eggs".into())).unwrap();
    db.merge("laptop", "phone").unwrap();
    db.apply("laptop", &OrSetOp::Remove("eggs".into())).unwrap();
    db.fork("tablet", "laptop").unwrap();
    db.merge("laptop", "tablet").unwrap();
    let v = db.apply("laptop", &OrSetOp::Lookup("eggs".into())).unwrap();
    assert_eq!(v, OrSetValue::Present(false));
}

#[test]
fn queue_merge_interleaves_in_timestamp_order() {
    let mut db: BranchStore<Queue<u32>> = BranchStore::new("a");
    db.apply("a", &QueueOp::Enqueue(1)).unwrap();
    db.fork("b", "a").unwrap();

    // Divergent enqueues: a gets 2, then b gets 3 (later Lamport time).
    db.apply("a", &QueueOp::Enqueue(2)).unwrap();
    db.apply("b", &QueueOp::Enqueue(3)).unwrap();
    // b consumes the shared head concurrently.
    let v = db.apply("b", &QueueOp::Dequeue).unwrap();
    match v {
        QueueValue::Dequeued(Some(entry)) => assert_eq!(entry.1, 1),
        other => panic!("expected to dequeue the shared head, got {other:?}"),
    }

    db.merge("a", "b").unwrap();
    // After the merge: 1 was dequeued on b (dequeues win), and the
    // concurrent enqueues appear in timestamp order.
    let first = db.apply("a", &QueueOp::Dequeue).unwrap();
    let second = db.apply("a", &QueueOp::Dequeue).unwrap();
    let drained = db.apply("a", &QueueOp::Dequeue).unwrap();
    match (first, second) {
        (QueueValue::Dequeued(Some(x)), QueueValue::Dequeued(Some(y))) => {
            assert_eq!(
                (x.1, y.1),
                (2, 3),
                "merge must keep both branches' enqueues in order"
            );
        }
        other => panic!("expected two dequeues, got {other:?}"),
    }
    assert_eq!(
        drained,
        QueueValue::Dequeued(None),
        "queue must then be empty"
    );
}

/// The three types above, driven through the same fork/apply/merge shape by
/// one generic function — guards the `Mrdt`-generic store path itself
/// (monomorphization differences can't hide here).
#[test]
fn generic_store_round_trip_for_three_types() {
    fn round_trip<M: Mrdt>(ops: &[M::Op]) -> BranchStore<M> {
        let mut db: BranchStore<M> = BranchStore::new("root");
        db.fork("left", "root").unwrap();
        db.fork("right", "root").unwrap();
        for (i, op) in ops.iter().enumerate() {
            let branch = if i % 2 == 0 { "left" } else { "right" };
            db.apply(branch, op).unwrap();
        }
        db.merge("left", "right").unwrap();
        db.merge("right", "left").unwrap();
        let l = db.state("left").unwrap();
        let r = db.state("right").unwrap();
        assert!(
            l.observably_equal(&r),
            "left/right disagree after bidirectional merge"
        );
        db
    }

    round_trip::<Counter>(&[CounterOp::Increment; 6]);
    round_trip::<OrSetSpace<u32>>(&[
        OrSetOp::Add(1),
        OrSetOp::Add(2),
        OrSetOp::Remove(1),
        OrSetOp::Add(3),
    ]);
    round_trip::<Queue<u32>>(&[
        QueueOp::Enqueue(10),
        QueueOp::Enqueue(20),
        QueueOp::Dequeue,
        QueueOp::Enqueue(30),
    ]);
}

//! Transactions and the commit-free read path, exercised against **both**
//! persistence backends through the `tests/common` harness.
//!
//! The acceptance properties of the API redesign:
//!
//! * a transaction of `N` ops is observably equal to `N` sequential
//!   applies and produces **exactly one** commit (proptest, both
//!   backends);
//! * reads leave `commit_count()` unchanged and need **no `&mut`** access
//!   to the store — 1000 reads through a shared reference mint 0 commits;
//! * dropped transactions roll back and publish nothing to the backend.

mod common;

use common::{for_each_backend, BackendFactory};
use peepul::prelude::*;
use peepul::types::counter::{CounterOp, CounterQuery};
use peepul::types::or_set::{OrSet, OrSetOp, OrSetQuery};
use proptest::prelude::*;

type Db<M> = BranchStore<M, Box<dyn Backend + Send + Sync>>;

fn open<M: Mrdt>(make: &mut BackendFactory<'_>, root: &str) -> Db<M> {
    BranchStore::with_backend(root, make()).expect("open store")
}

/// Acceptance: a 10-op transaction creates exactly 1 commit, and 1000
/// `read` calls create 0 commits while holding only `&BranchStore`.
#[test]
fn ten_op_transaction_one_commit_and_thousand_reads_zero_commits() {
    for_each_backend("txn-acceptance", |kind, make| {
        let mut db: Db<Counter> = open(make, "main");
        let before = db.commit_count();
        db.branch_mut("main")
            .unwrap()
            .transaction(|tx| {
                for _ in 0..10 {
                    tx.apply(&CounterOp::Increment);
                }
            })
            .unwrap();
        assert_eq!(
            db.commit_count(),
            before + 1,
            "{kind}: 10 ops must mint exactly 1 commit"
        );

        // The read path: a shared reference is all it takes — the binding
        // itself proves no `&mut` access is required.
        let shared: &Db<Counter> = &db;
        let commits = shared.commit_count();
        let puts_before = shared.backend().stats().puts;
        for _ in 0..1000 {
            assert_eq!(shared.read("main", &CounterQuery::Value).unwrap(), 10);
        }
        assert_eq!(
            shared.commit_count(),
            commits,
            "{kind}: 1000 reads must mint 0 commits"
        );
        assert_eq!(
            shared.backend().stats().puts,
            puts_before,
            "{kind}: reads must not publish to the backend"
        );
    });
}

#[test]
fn dropped_transaction_publishes_nothing() {
    for_each_backend("txn-rollback", |kind, make| {
        let mut db: Db<OrSet<u8>> = open(make, "main");
        db.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(1))
            .unwrap();
        let head = db.head_id("main").unwrap();
        let commits = db.commit_count();
        {
            let mut b = db.branch_mut("main").unwrap();
            let mut tx = b.begin();
            tx.apply(&OrSetOp::Add(2));
            tx.apply(&OrSetOp::Remove(1));
            // Dropped uncommitted: rollback.
        }
        assert_eq!(db.commit_count(), commits, "{kind}");
        assert_eq!(db.head_id("main").unwrap(), head, "{kind}");
        assert!(
            db.state("main").unwrap().contains(&1),
            "{kind}: rolled-back remove must not stick"
        );
    });
}

/// Interprets a byte as an OR-set update, covering add/remove conflicts.
fn op_of(byte: u8) -> OrSetOp<u8> {
    let x = byte % 8;
    if byte % 3 == 0 {
        OrSetOp::Remove(x)
    } else {
        OrSetOp::Add(x)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A transaction of N ops ≡ N sequential applies, observably — and the
    /// commit ledgers differ exactly as batching promises: 1 commit vs N.
    /// Checked on both backends.
    #[test]
    fn transaction_equals_sequential_applies(
        raw in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let ops: Vec<OrSetOp<u8>> = raw.iter().copied().map(op_of).collect();
        for_each_backend("txn-equiv", |kind, make| {
            let mut batched: Db<OrSet<u8>> = open(make, "main");
            let mut sequential: Db<OrSet<u8>> = open(make, "main");

            batched
                .branch_mut("main")
                .unwrap()
                .transaction(|tx| {
                    for op in &ops {
                        tx.apply(op);
                    }
                })
                .unwrap();
            for op in &ops {
                sequential.branch_mut("main").unwrap().apply(op).unwrap();
            }

            // Plain asserts: a panic inside the backend closure still fails
            // (and shrinks) the proptest case.
            let b = batched.state("main").unwrap();
            let s = sequential.state("main").unwrap();
            assert!(
                b.observably_equal(&s),
                "{kind}: batched {b:?} != sequential {s:?}"
            );
            // Same queries, same answers, through the commit-free path.
            for x in 0..8u8 {
                assert_eq!(
                    batched.read("main", &OrSetQuery::Lookup(x)).unwrap(),
                    sequential.read("main", &OrSetQuery::Lookup(x)).unwrap(),
                    "{kind}"
                );
            }
            // Exactly one commit for the batch (plus the shared root).
            assert_eq!(batched.commit_count(), 2, "{kind}");
            assert_eq!(sequential.commit_count(), 1 + ops.len(), "{kind}");
        });
    }

    /// Reads never perturb the store: interleaving arbitrary reads between
    /// updates changes neither the commit count nor the head addresses.
    #[test]
    fn reads_are_side_effect_free(
        raw in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        for_each_backend("read-pure", |kind, make| {
            let mut noisy: Db<OrSet<u8>> = open(make, "main");
            let mut quiet: Db<OrSet<u8>> = open(make, "main");
            for byte in &raw {
                let op = op_of(*byte);
                noisy.branch_mut("main").unwrap().apply(&op).unwrap();
                quiet.branch_mut("main").unwrap().apply(&op).unwrap();
                // Hammer the read path on one store only.
                for x in 0..4u8 {
                    noisy.read("main", &OrSetQuery::Lookup(x)).unwrap();
                    noisy.branch("main").unwrap().read(&OrSetQuery::Read);
                }
            }
            assert_eq!(
                noisy.commit_count(),
                quiet.commit_count(),
                "{kind}: reads minted commits"
            );
            assert_eq!(
                noisy.head_id("main").unwrap(),
                quiet.head_id("main").unwrap(),
                "{kind}: reads changed the head"
            );
        });
    }
}

//! Cross-crate convergence properties: randomized divergence + merge for
//! every data type, checked with proptest.
//!
//! These are the classic RDT laws, stated modulo observational
//! equivalence (paper, Definition 3.5):
//!
//! * merge commutativity: `merge(l, a, b) ∼ merge(l, b, a)`,
//! * merge idempotence: `merge(l, a, a) ∼ a`,
//! * merge with an unchanged branch keeps the other's changes,
//! * full pairwise sync makes all replicas observationally equal.

mod common;

use common::for_each_backend;
use peepul::prelude::*;
use peepul::types::counter::CounterOp;
use peepul::types::ew_flag::EwFlagOp;
use peepul::types::log::LogOp;
use peepul::types::lww_register::LwwOp;
use peepul::types::or_set::OrSetOp;
use peepul::types::pn_counter::PnCounterOp;
use peepul::types::queue::QueueOp;
use proptest::prelude::*;

/// Applies a sequence of (replica, op) pairs starting from a common state,
/// returning the LCA and the two divergent branches, with timestamps
/// minted like the store does (global tick, per-branch replica id).
fn diverge<M: Mrdt>(base_ops: &[M::Op], a_ops: &[M::Op], b_ops: &[M::Op]) -> (M, M, M) {
    let mut tick = 0u64;
    let mut next = |r: u32| {
        tick += 1;
        Timestamp::new(tick, ReplicaId::new(r))
    };
    let mut lca = M::initial();
    for op in base_ops {
        lca = lca.apply(op, next(0)).0;
    }
    let mut a = lca.clone();
    for op in a_ops {
        a = a.apply(op, next(1)).0;
    }
    let mut b = lca.clone();
    for op in b_ops {
        b = b.apply(op, next(2)).0;
    }
    (lca, a, b)
}

/// The three merge laws for one generated instance.
fn merge_laws<M: Mrdt>(lca: &M, a: &M, b: &M) {
    let ab = M::merge(lca, a, b);
    let ba = M::merge(lca, b, a);
    assert!(
        ab.observably_equal(&ba),
        "merge not commutative: {ab:?} vs {ba:?}"
    );
    // Idempotence: merging a branch with an identical copy. The store's
    // LCA of two identical branches is that very state (intersection of
    // equal histories), so the law is merge(a, a, a) ∼ a — NOT
    // merge(l, a, a), which pairs states with an LCA the store would never
    // supply (and which delta-style merges like the counter's rightly
    // reject).
    let aa = M::merge(a, a, a);
    assert!(
        aa.observably_equal(a),
        "merge not idempotent: {aa:?} vs {a:?}"
    );
    let al = M::merge(lca, a, lca);
    assert!(
        al.observably_equal(a),
        "merge with unchanged branch lost changes: {al:?} vs {a:?}"
    );
}

fn orset_op_strategy() -> impl Strategy<Value = OrSetOp<u8>> {
    (0u8..8, 0u8..3).prop_map(|(x, kind)| match kind {
        0 => OrSetOp::Add(x),
        1 => OrSetOp::Remove(x),
        _ => OrSetOp::Add(x.wrapping_add(1)),
    })
}

fn queue_op_strategy() -> impl Strategy<Value = QueueOp<u8>> {
    (0u8..100, proptest::bool::ANY).prop_map(|(v, enq)| {
        if enq {
            QueueOp::Enqueue(v)
        } else {
            QueueOp::Dequeue
        }
    })
}

fn flag_op_strategy() -> impl Strategy<Value = EwFlagOp> {
    prop_oneof![Just(EwFlagOp::Enable), Just(EwFlagOp::Disable)]
}

fn log_op_strategy() -> impl Strategy<Value = LogOp<u8>> {
    (0u8..100).prop_map(LogOp::Append)
}

fn lww_op_strategy() -> impl Strategy<Value = LwwOp<u8>> {
    (0u8..100).prop_map(LwwOp::Write)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn counter_merge_laws(
        n_base in 0usize..10, n_a in 0usize..10, n_b in 0usize..10
    ) {
        let base = vec![CounterOp::Increment; n_base];
        let a = vec![CounterOp::Increment; n_a];
        let b = vec![CounterOp::Increment; n_b];
        let (lca, sa, sb) = diverge::<Counter>(&base, &a, &b);
        merge_laws(&lca, &sa, &sb);
        let merged = Counter::merge(&lca, &sa, &sb);
        prop_assert_eq!(merged.count(), (n_base + n_a + n_b) as u64);
    }

    #[test]
    fn pn_counter_merge_laws(
        incs_a in 0usize..8, decs_a in 0usize..8, incs_b in 0usize..8
    ) {
        let mut a_ops = vec![PnCounterOp::Increment; incs_a];
        a_ops.extend(vec![PnCounterOp::Decrement; decs_a]);
        let b_ops = vec![PnCounterOp::Increment; incs_b];
        let (lca, sa, sb) = diverge::<PnCounter>(&[], &a_ops, &b_ops);
        merge_laws(&lca, &sa, &sb);
        let merged = PnCounter::merge(&lca, &sa, &sb);
        prop_assert_eq!(merged.value(), incs_a as i64 - decs_a as i64 + incs_b as i64);
    }

    #[test]
    fn or_set_merge_laws(
        base in proptest::collection::vec(orset_op_strategy(), 0..12),
        a in proptest::collection::vec(orset_op_strategy(), 0..12),
        b in proptest::collection::vec(orset_op_strategy(), 0..12),
    ) {
        let (lca, sa, sb) = diverge::<OrSet<u8>>(&base, &a, &b);
        merge_laws(&lca, &sa, &sb);
    }

    #[test]
    fn or_set_space_merge_laws(
        base in proptest::collection::vec(orset_op_strategy(), 0..12),
        a in proptest::collection::vec(orset_op_strategy(), 0..12),
        b in proptest::collection::vec(orset_op_strategy(), 0..12),
    ) {
        let (lca, sa, sb) = diverge::<OrSetSpace<u8>>(&base, &a, &b);
        merge_laws(&lca, &sa, &sb);
    }

    #[test]
    fn or_set_spacetime_merge_laws(
        base in proptest::collection::vec(orset_op_strategy(), 0..12),
        a in proptest::collection::vec(orset_op_strategy(), 0..12),
        b in proptest::collection::vec(orset_op_strategy(), 0..12),
    ) {
        let (lca, sa, sb) = diverge::<OrSetSpacetime<u8>>(&base, &a, &b);
        merge_laws(&lca, &sa, &sb);
    }

    #[test]
    fn all_or_set_variants_agree_observably(
        base in proptest::collection::vec(orset_op_strategy(), 0..12),
        a in proptest::collection::vec(orset_op_strategy(), 0..12),
        b in proptest::collection::vec(orset_op_strategy(), 0..12),
    ) {
        let (l1, a1, b1) = diverge::<OrSet<u8>>(&base, &a, &b);
        let (l2, a2, b2) = diverge::<OrSetSpace<u8>>(&base, &a, &b);
        let (l3, a3, b3) = diverge::<OrSetSpacetime<u8>>(&base, &a, &b);
        let m1 = OrSet::merge(&l1, &a1, &b1);
        let m2 = OrSetSpace::merge(&l2, &a2, &b2);
        let m3 = OrSetSpacetime::merge(&l3, &a3, &b3);
        prop_assert_eq!(m1.elements(), m2.elements());
        prop_assert_eq!(m2.elements(), m3.elements());
    }

    #[test]
    fn queue_merge_laws(
        base in proptest::collection::vec(queue_op_strategy(), 0..12),
        a in proptest::collection::vec(queue_op_strategy(), 0..12),
        b in proptest::collection::vec(queue_op_strategy(), 0..12),
    ) {
        let (lca, sa, sb) = diverge::<Queue<u8>>(&base, &a, &b);
        merge_laws(&lca, &sa, &sb);
        // Merged queue stays timestamp-ascending.
        let m = Queue::merge(&lca, &sa, &sb);
        let times: Vec<Timestamp> = m.to_list().iter().map(|(t, _)| *t).collect();
        prop_assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn flag_merge_laws(
        base in proptest::collection::vec(flag_op_strategy(), 0..8),
        a in proptest::collection::vec(flag_op_strategy(), 0..8),
        b in proptest::collection::vec(flag_op_strategy(), 0..8),
    ) {
        let (lca, sa, sb) = diverge::<EwFlag>(&base, &a, &b);
        merge_laws(&lca, &sa, &sb);
        let (lca, sa, sb) = diverge::<EwFlagSpace>(&base, &a, &b);
        merge_laws(&lca, &sa, &sb);
    }

    #[test]
    fn log_merge_laws_and_ordering(
        base in proptest::collection::vec(log_op_strategy(), 0..8),
        a in proptest::collection::vec(log_op_strategy(), 0..8),
        b in proptest::collection::vec(log_op_strategy(), 0..8),
    ) {
        let (lca, sa, sb) = diverge::<MergeableLog<u8>>(&base, &a, &b);
        merge_laws(&lca, &sa, &sb);
        let m = MergeableLog::merge(&lca, &sa, &sb);
        let times: Vec<Timestamp> = m.iter().map(|(t, _)| *t).collect();
        prop_assert!(times.windows(2).all(|w| w[0] > w[1]), "log must be newest-first");
        prop_assert_eq!(m.len(), base.len() + a.len() + b.len());
    }

    #[test]
    fn lww_register_merge_laws(
        base in proptest::collection::vec(lww_op_strategy(), 0..6),
        a in proptest::collection::vec(lww_op_strategy(), 0..6),
        b in proptest::collection::vec(lww_op_strategy(), 0..6),
    ) {
        let (lca, sa, sb) = diverge::<LwwRegister<u8>>(&base, &a, &b);
        merge_laws(&lca, &sa, &sb);
        // The merged value is the chronologically last write overall.
        let m = LwwRegister::merge(&lca, &sa, &sb);
        if b.is_empty() && a.is_empty() {
            prop_assert!(m.observably_equal(&lca));
        } else if b.is_empty() {
            prop_assert!(m.observably_equal(&sa));
        } else {
            // b's ops were minted last in `diverge`, so b's last write wins.
            prop_assert!(m.observably_equal(&sb));
        }
    }
}

/// Multi-replica convergence through the cluster's legacy shared-store
/// simulation mode (maximal thread interleaving over one mutexed store):
/// after full pairwise sync, every replica is observationally equal — on
/// the in-memory backend and the on-disk segment backend alike. True
/// replicated fleets (independent stores over transports) are exercised
/// in `tests/replication.rs`.
#[test]
fn cluster_convergence_under_concurrency() {
    for_each_backend("cluster", |kind, make| {
        let cluster: Cluster<OrSetSpace<u32>, _> = Cluster::with_backend(4, make()).unwrap();
        cluster
            .run(60, 9, |replica, round| {
                let x = ((replica * 13 + round * 5) % 24) as u32;
                match round % 5 {
                    4 => OrSetOp::Remove(x),
                    _ => OrSetOp::Add(x),
                }
            })
            .unwrap();
        let states = cluster.converge().unwrap();
        for s in &states[1..] {
            assert!(states[0].observably_equal(s), "{kind}");
        }
    });
}

/// The merge laws exercised *through the store* (rather than on bare
/// states): a fork/apply/merge round-trip converges to the same
/// observable state on every backend, and the backends agree with each
/// other byte-for-byte on the resulting content addresses.
#[test]
fn store_convergence_agrees_across_backends() {
    let mut head_ids = Vec::new();
    for_each_backend("store-laws", |kind, make| {
        let mut db: BranchStore<OrSetSpace<u32>, _> =
            BranchStore::with_backend("a", make()).unwrap();
        db.branch_mut("a").unwrap().fork("b").unwrap();
        for i in 0..6u32 {
            db.branch_mut("a").unwrap().apply(&OrSetOp::Add(i)).unwrap();
            db.branch_mut("b")
                .unwrap()
                .apply(&OrSetOp::Add(i + 50))
                .unwrap();
            if i % 2 == 0 {
                db.branch_mut("b")
                    .unwrap()
                    .apply(&OrSetOp::Remove(i))
                    .unwrap();
            }
            db.branch_mut("a").unwrap().merge_from("b").unwrap();
            db.branch_mut("b").unwrap().merge_from("a").unwrap();
        }
        let (a, b) = (db.state("a").unwrap(), db.state("b").unwrap());
        assert!(a.observably_equal(&b), "{kind}");
        head_ids.push((db.head_id("a").unwrap(), db.state_id("a").unwrap()));
    });
    // Identical schedule ⇒ byte-identical Merkle heads on every backend.
    assert!(head_ids.windows(2).all(|w| w[0] == w[1]), "{head_ids:?}");
}

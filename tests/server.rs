//! Integration suite for the service layer: one in-process
//! `peepul-server` hammered by many real TCP client connections.
//!
//! What the daemon promises, checked end to end over loopback sockets:
//!
//! * many interleaved sessions writing concurrently lose nothing — every
//!   acknowledged put is visible afterwards;
//! * the read path takes the **shared** lock: a `get` over TCP completes
//!   while another thread is holding the store's read lock (it would
//!   deadline out if reads were exclusive);
//! * tenant sessions are namespaced — one tenant's writes are invisible
//!   to another tenant addressing the same branch name;
//! * forked/merged client branches converge to the mainline answer;
//! * a daemon over the segment backend restarted on the same directory
//!   serves every previously acknowledged write (durability through the
//!   service path, not just the store API);
//! * the `Metrics` endpoint returns a parseable exposition covering the
//!   store, net and server subsystems, and `TraceDump` flushes the trace
//!   ring as JSONL to the configured path.

mod common;

use common::Scratch;
use peepul::store::{MemoryBackend, SegmentBackend};
use peepul_server::{Server, ServerConfig, ServiceClient};
use std::time::{Duration, Instant};

fn memory_server(name: &str) -> Server<MemoryBackend> {
    Server::spawn(ServerConfig::new(name), "127.0.0.1:0", MemoryBackend::new()).unwrap()
}

#[test]
fn interleaved_sessions_lose_no_acknowledged_put() {
    let server = memory_server("hammer");
    let addr = server.addr();
    const THREADS: usize = 8;
    const PUTS: usize = 40;

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).unwrap();
                for i in 0..PUTS {
                    // Interleave writes and reads on one session: every
                    // acknowledged put must be readable immediately.
                    let key = format!("t{t}-k{i}");
                    client.put("main", &key, format!("v{i}")).unwrap();
                    assert_eq!(
                        client.get("main", &key).unwrap().as_deref(),
                        Some(format!("v{i}").as_str())
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Every thread's every put survived the interleaving.
    let mut client = ServiceClient::connect(addr).unwrap();
    let table = client.query("main").unwrap();
    assert_eq!(table.len(), THREADS * PUTS);
    for t in 0..THREADS {
        for i in 0..PUTS {
            assert_eq!(
                client.get("main", format!("t{t}-k{i}")).unwrap().as_deref(),
                Some(format!("v{i}").as_str())
            );
        }
    }
}

#[test]
fn reads_are_served_under_the_shared_lock() {
    let server = memory_server("readers");
    let addr = server.addr();
    let mut client = ServiceClient::connect(addr).unwrap();
    client.put("main", "k", "v").unwrap();

    // Hold the store's *read* lock in-process for 600 ms; a TCP get must
    // complete well inside that window. If the service's get path took
    // the exclusive lock it would wait out the full hold.
    let replica = server.replica().clone();
    let holder = std::thread::spawn(move || {
        replica.with_store_read(|_| std::thread::sleep(Duration::from_millis(600)))
    });
    std::thread::sleep(Duration::from_millis(50)); // let the holder acquire
    let start = Instant::now();
    assert_eq!(client.get("main", "k").unwrap().as_deref(), Some("v"));
    assert!(
        start.elapsed() < Duration::from_millis(400),
        "a get must not wait for a concurrent read-lock holder"
    );
    holder.join().unwrap();
}

#[test]
fn tenants_are_namespaced_end_to_end() {
    let server = memory_server("tenants");
    let addr = server.addr();

    let mut acme = ServiceClient::connect(addr).unwrap();
    acme.hello("acme").unwrap();
    acme.put("main", "color", "red").unwrap();

    let mut zebra = ServiceClient::connect(addr).unwrap();
    zebra.hello("zebra").unwrap();
    zebra.put("main", "color", "blue").unwrap();

    // Same branch name, disjoint keyspaces.
    assert_eq!(acme.get("main", "color").unwrap().as_deref(), Some("red"));
    assert_eq!(zebra.get("main", "color").unwrap().as_deref(), Some("blue"));
    assert_eq!(acme.branches().unwrap(), vec!["main".to_owned()]);

    // The operator view (unbound session) sees both namespaces; a tenant
    // cannot address across its own.
    let mut operator = ServiceClient::connect(addr).unwrap();
    assert_eq!(
        operator.get("acme/main", "color").unwrap().as_deref(),
        Some("red")
    );
    assert!(acme.get("zebra/main", "color").is_err());
}

#[test]
fn fork_and_merge_converge_over_the_wire() {
    let server = memory_server("merging");
    let addr = server.addr();
    let mut a = ServiceClient::connect(addr).unwrap();
    let mut b = ServiceClient::connect(addr).unwrap();

    a.put("main", "base", "yes").unwrap();
    a.fork("main", "left").unwrap();
    b.fork("main", "right").unwrap();
    // Two sessions work their own branches, interleaved.
    a.put("left", "from-left", "1").unwrap();
    b.put("right", "from-right", "2").unwrap();
    a.put("left", "shared", "L").unwrap();
    b.put("right", "shared", "R").unwrap();

    a.merge("main", "left").unwrap();
    b.merge("main", "right").unwrap();

    let table: std::collections::BTreeMap<String, String> =
        a.query("main").unwrap().into_iter().collect();
    assert_eq!(table["base"], "yes");
    assert_eq!(table["from-left"], "1");
    assert_eq!(table["from-right"], "2");
    // Concurrent writes to one key resolve by LWW — deterministically to
    // one of the two, on every replica.
    assert!(table["shared"] == "L" || table["shared"] == "R");
}

#[test]
fn restarted_daemon_serves_every_acknowledged_write() {
    let scratch = Scratch::new("server-restart");
    let dir = scratch.path().join("db");

    {
        let server = Server::spawn(
            ServerConfig::new("durable"),
            "127.0.0.1:0",
            SegmentBackend::open(&dir).unwrap(),
        )
        .unwrap();
        let mut client = ServiceClient::connect(server.addr()).unwrap();
        client.hello("acme").unwrap();
        for i in 0..10 {
            client
                .put("main", format!("k{i}"), format!("v{i}"))
                .unwrap();
        }
        // Drop = shutdown + join; the backend's publish discipline means
        // every acknowledged put is on disk.
    }

    let server = Server::spawn(
        ServerConfig::new("durable"),
        "127.0.0.1:0",
        SegmentBackend::open(&dir).unwrap(),
    )
    .unwrap();
    let mut client = ServiceClient::connect(server.addr()).unwrap();
    client.hello("acme").unwrap();
    for i in 0..10 {
        assert_eq!(
            client.get("main", format!("k{i}")).unwrap().as_deref(),
            Some(format!("v{i}").as_str())
        );
    }
}

#[test]
fn metrics_exposition_covers_every_subsystem() {
    let server = memory_server("observed");
    let addr = server.addr();
    let mut client = ServiceClient::connect(addr).unwrap();
    client.hello("acme").unwrap();
    for i in 0..5 {
        client.put("main", format!("k{i}"), "v").unwrap();
    }
    assert_eq!(client.get("main", "k0").unwrap().as_deref(), Some("v"));

    let text = client.metrics().unwrap();
    let samples = peepul::obs::parse_exposition(&text).expect("exposition must parse");
    assert!(!samples.is_empty());
    // At least one sample from each instrumented subsystem.
    for prefix in ["peepul_store_", "peepul_net_", "peepul_server_"] {
        assert!(
            samples.iter().any(|s| s.name.starts_with(prefix)),
            "no {prefix}* sample in:\n{text}"
        );
    }
    let value = |name: &str, label: Option<(&str, &str)>| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && label.is_none_or(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
            .value
    };
    // The five puts were counted as commits, as typed requests and as
    // tenant traffic — one fact, three views, all from one registry.
    assert!(value("peepul_store_commits_total", None) >= 5.0);
    assert!(value("peepul_server_requests_total", None) >= 7.0);
    assert!(value("peepul_server_request_micros_count", Some(("kind", "put"))) >= 5.0);
    // hello (the binding request itself) + 5 puts + 1 get.
    assert_eq!(
        value("peepul_server_tenant_ops_total", Some(("tenant", "acme"))),
        7.0
    );

    // Disabled observability degrades to an empty exposition, not an error.
    let dark = Server::spawn(
        ServerConfig {
            obs: peepul::obs::ObsConfig::disabled(),
            ..ServerConfig::new("dark")
        },
        "127.0.0.1:0",
        MemoryBackend::new(),
    )
    .unwrap();
    let mut client = ServiceClient::connect(dark.addr()).unwrap();
    assert_eq!(client.metrics().unwrap(), "");
}

#[test]
fn trace_dump_flushes_the_event_ring_as_jsonl() {
    let scratch = Scratch::new("trace-dump");
    let path = scratch.path().join("trace.jsonl");
    let server = Server::spawn(
        ServerConfig {
            trace_dump: Some(path.clone()),
            ..ServerConfig::new("traced")
        },
        "127.0.0.1:0",
        MemoryBackend::new(),
    )
    .unwrap();
    let mut client = ServiceClient::connect(server.addr()).unwrap();
    client.put("main", "k", "v").unwrap();
    client.trace_dump().unwrap();

    let dump = std::fs::read_to_string(&path).unwrap();
    assert!(!dump.trim().is_empty(), "trace dump must not be empty");
    for line in dump.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each trace event is one JSON object per line, got: {line}"
        );
    }
    // The put's commit landed in the ring.
    assert!(dump.contains("\"commit\""), "no commit event in:\n{dump}");
}

#[test]
fn peered_servers_converge_via_anti_entropy() {
    // A 2-node in-process fleet: writes land on different nodes; the
    // background sync threads must make both serve both writes with
    // identical branch heads. (The 3-node *process*-level version of this
    // is scripts/service_smoke.sh in CI.)
    let a = Server::spawn(
        ServerConfig {
            sync_interval: Duration::from_millis(100),
            ..ServerConfig::new("node-a")
        },
        "127.0.0.1:0",
        MemoryBackend::new(),
    )
    .unwrap();
    let b = Server::spawn(
        ServerConfig {
            peers: vec![a.addr().to_string()],
            sync_interval: Duration::from_millis(100),
            ..ServerConfig::new("node-b")
        },
        "127.0.0.1:0",
        MemoryBackend::new(),
    )
    .unwrap();

    let mut ca = ServiceClient::connect(a.addr()).unwrap();
    let mut cb = ServiceClient::connect(b.addr()).unwrap();
    ca.put("main", "from-a", "1").unwrap();
    cb.put("main", "from-b", "2").unwrap();

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let a_head = a.replica().head_id("main").ok();
        let b_head = b.replica().head_id("main").ok();
        if a_head.is_some() && a_head == b_head {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet did not converge: a={a_head:?} b={b_head:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(ca.get("main", "from-b").unwrap().as_deref(), Some("2"));
    assert_eq!(cb.get("main", "from-a").unwrap().as_deref(), Some("1"));
}

//! Property tests for the multi-segment storage engine: GC, rotation and
//! compaction are *unobservable* at the store level.
//!
//! Any interleaving of commits, forks, merges, transactions, stranded
//! history, GC, segment rotation and compaction must leave a
//! `SegmentBackend` store byte-identical to a `MemoryBackend` store fed
//! the same schedule — same Merkle head and state address per branch,
//! same query answers, same ref table, same Lamport tick. And a store
//! that ran GC + compaction must reopen from disk as exactly the store
//! that was dropped: same branch table, same per-branch history depth,
//! same tick, same answers.

mod common;

use common::Scratch;
use peepul::prelude::*;
use peepul::store::{Backend, MemoryBackend, ObjectId, SegmentBackend, SegmentOptions};
use peepul::types::or_set_space::{OrSetOp, OrSetOutput, OrSetQuery, OrSetSpace};
use proptest::prelude::*;

/// A tiny rotation cap so schedules of a few dozen steps span many
/// segments — rotation and compaction run for real, not vacuously.
fn tiny() -> SegmentOptions {
    SegmentOptions {
        durable: false,
        max_segment_bytes: 512,
        ..SegmentOptions::default()
    }
}

/// One step of a randomized schedule, interpreted over a growing set of
/// branches (`index % live-branch-count` picks targets, so every
/// generated schedule is valid by construction).
#[derive(Clone, Debug)]
enum Step {
    Fork {
        from: u8,
    },
    Add {
        branch: u8,
        value: u8,
    },
    Remove {
        branch: u8,
        value: u8,
    },
    Merge {
        into: u8,
        from: u8,
    },
    /// A whole batch through one transaction — the group-commit path.
    Batch {
        branch: u8,
        values: Vec<u8>,
    },
    /// Garbage maker: fork a scratch branch, commit on it, then repoint
    /// its ref back to the fork base — the scratch commit is stranded.
    Strand {
        from: u8,
        value: u8,
    },
    /// Reference-tracing GC over whatever is stranded right now.
    Gc,
    /// Seal the active segment (no-op on the in-memory store).
    Rotate,
    /// Fold sealed files into a pack (no-op on the in-memory store).
    Compact,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        1 => (any::<u8>(),).prop_map(|(from,)| Step::Fork { from }),
        4 => (any::<u8>(), 0u8..16).prop_map(|(branch, value)| Step::Add { branch, value }),
        2 => (any::<u8>(), 0u8..16).prop_map(|(branch, value)| Step::Remove { branch, value }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(into, from)| Step::Merge { into, from }),
        2 => (any::<u8>(), proptest::collection::vec(0u8..16, 1..5))
            .prop_map(|(branch, values)| Step::Batch { branch, values }),
        2 => (any::<u8>(), 0u8..16).prop_map(|(from, value)| Step::Strand { from, value }),
        1 => Just(Step::Gc),
        1 => Just(Step::Rotate),
        1 => Just(Step::Compact),
    ]
}

/// Everything observable about a store after a replay: per-branch
/// `(name, head address, state address, elements)`, the backend ref
/// table, and the Lamport tick.
type Observation = (
    Vec<(String, ObjectId, ObjectId, Vec<u8>)>,
    Vec<(String, ObjectId)>,
    u64,
);

fn observe<B: Backend>(db: &BranchStore<OrSetSpace<u8>, B>) -> Observation {
    let branches = db
        .branch_names()
        .iter()
        .map(|b| {
            let OrSetOutput::Elements(e) = db.read(b, &OrSetQuery::Read).unwrap() else {
                panic!("read returns elements")
            };
            (
                b.to_string(),
                db.head_id(b).unwrap(),
                db.state_id(b).unwrap(),
                e,
            )
        })
        .collect();
    (branches, db.backend().refs().unwrap(), db.tick())
}

/// Replays `schedule` over `backend`. `rotate` is the backend-specific
/// interpretation of [`Step::Rotate`] (a real seal for segments, nothing
/// for memory).
fn replay<B: Backend>(
    schedule: &[Step],
    backend: B,
    rotate: impl Fn(&mut BranchStore<OrSetSpace<u8>, B>),
) -> BranchStore<OrSetSpace<u8>, B> {
    let mut db: BranchStore<OrSetSpace<u8>, B> =
        BranchStore::with_backend("b0", backend).expect("open store");
    let mut branches = vec!["b0".to_owned()];
    let pick = |branches: &[String], i: u8| branches[i as usize % branches.len()].clone();
    for (n, step) in schedule.iter().enumerate() {
        match step {
            Step::Fork { from } => {
                let name = format!("b{}", n + 1);
                db.branch_mut(&pick(&branches, *from))
                    .unwrap()
                    .fork(&name)
                    .unwrap();
                branches.push(name);
            }
            Step::Add { branch, value } => {
                db.branch_mut(&pick(&branches, *branch))
                    .unwrap()
                    .apply(&OrSetOp::Add(*value))
                    .unwrap();
            }
            Step::Remove { branch, value } => {
                db.branch_mut(&pick(&branches, *branch))
                    .unwrap()
                    .apply(&OrSetOp::Remove(*value))
                    .unwrap();
            }
            Step::Merge { into, from } => {
                let (into, from) = (pick(&branches, *into), pick(&branches, *from));
                if into != from {
                    db.branch_mut(&into).unwrap().merge_from(&from).unwrap();
                }
            }
            Step::Batch { branch, values } => {
                let b = pick(&branches, *branch);
                db.branch_mut(&b)
                    .unwrap()
                    .transaction(|tx| {
                        for v in values {
                            tx.apply(&OrSetOp::Add(*v));
                        }
                    })
                    .unwrap();
            }
            Step::Strand { from, value } => {
                let src = pick(&branches, *from);
                let name = format!("strand{n}");
                db.branch_mut(&src).unwrap().fork(&name).unwrap();
                db.branch_mut(&name)
                    .unwrap()
                    .apply(&OrSetOp::Add(*value))
                    .unwrap();
                let base = db.head_id(&src).unwrap();
                db.force_track(&name, base).unwrap();
                branches.push(name);
            }
            Step::Gc => {
                db.collect_garbage().unwrap();
            }
            Step::Rotate => rotate(&mut db),
            Step::Compact => {
                db.compact_storage().unwrap();
            }
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any commit/fork/merge/GC/rotation/compaction interleaving is
    /// byte-identical across backends: the storage engine's lifecycle
    /// machinery never changes what the store holds.
    #[test]
    fn segment_lifecycle_is_unobservable_across_backends(
        schedule in proptest::collection::vec(step_strategy(), 1..40),
    ) {
        let scratch = Scratch::new("engine-equivalence");
        let mem = replay(&schedule, MemoryBackend::new(), |_| {});
        let seg_backend = SegmentBackend::open_with(scratch.path().join("replay"), tiny()).unwrap();
        let seg = replay(&schedule, seg_backend, |db| db.backend_mut().rotate().unwrap());
        prop_assert_eq!(observe(&mem), observe(&seg));
    }

    /// GC safety for delta chains: after any schedule and a final GC +
    /// compaction pass, every state reachable from a branch head still
    /// resolves from disk — GC never collects a snapshot base that a
    /// live delta record references — and the GC'd, compacted store
    /// reopens as a fixed point: a second GC pass collects nothing and
    /// nothing observable changes.
    #[test]
    fn gc_never_strands_a_live_delta_chain(
        schedule in proptest::collection::vec(step_strategy(), 1..40),
    ) {
        let scratch = Scratch::new("engine-delta-gc");
        let dir = scratch.path().join("db");
        let truth = {
            let backend = SegmentBackend::open_with(&dir, tiny()).unwrap();
            let mut db = replay(&schedule, backend, |db| db.backend_mut().rotate().unwrap());
            db.collect_garbage().unwrap();
            db.compact_storage().unwrap();
            // One published commit after the final GC, as in the reopen
            // test below: collected stranded commits may have carried the
            // clock's high-water mark, and a reachable top mint makes the
            // reopened clock land exactly on the live one.
            db.branch_mut("b0").unwrap().apply(&OrSetOp::Add(99)).unwrap();
            // `state_bytes` re-walks the stored record chain and
            // hash-verifies every link, so a collected base fails loudly.
            for name in db.branch_names() {
                let head = db.head_id(name).unwrap();
                for c in db.commits_between(&[head], &[]) {
                    let oid = db.state_oid(c);
                    prop_assert!(
                        db.state_bytes(oid).unwrap().is_some(),
                        "live state {oid:?} must resolve after GC"
                    );
                    if let Some((base, _)) = db.state_stored_delta(oid).unwrap() {
                        prop_assert!(
                            db.backend().contains(base).unwrap(),
                            "snapshot base {base:?} was collected while live delta {oid:?} references it"
                        );
                    }
                }
            }
            observe(&db)
        };
        let mut reopened: BranchStore<OrSetSpace<u8>, _> =
            BranchStore::open(SegmentBackend::open_with(&dir, tiny()).unwrap()).unwrap();
        prop_assert_eq!(observe(&reopened), truth.clone());
        let sweep = reopened.collect_garbage().unwrap();
        prop_assert_eq!(sweep.dead_objects, 0, "second GC after reopen must find nothing");
        reopened.compact_storage().unwrap();
        prop_assert_eq!(observe(&reopened), truth);
    }

    /// A store that ran GC + compaction reopens from disk as exactly the
    /// store that was dropped: branch table, per-branch history depth,
    /// Lamport tick, ref table and query answers all recover.
    #[test]
    fn open_after_gc_and_compaction_recovers_the_store(
        schedule in proptest::collection::vec(step_strategy(), 1..30),
    ) {
        let scratch = Scratch::new("engine-reopen");
        let dir = scratch.path().join("db");
        let (truth, depths) = {
            let backend = SegmentBackend::open_with(&dir, tiny()).unwrap();
            let mut db = replay(&schedule, backend, |db| db.backend_mut().rotate().unwrap());
            db.collect_garbage().unwrap();
            db.compact_storage().unwrap();
            // One more published commit AFTER the final GC: its mint is
            // the clock's high-water mark and it is reachable, so the
            // reopened clock must land exactly on the live one.
            db.branch_mut("b0").unwrap().apply(&OrSetOp::Add(99)).unwrap();
            let depths: Vec<usize> = db
                .branch_names()
                .iter()
                .map(|b| db.branch(b).unwrap().history().len())
                .collect();
            (observe(&db), depths)
        };
        let reopened: BranchStore<OrSetSpace<u8>, _> =
            BranchStore::open(SegmentBackend::open_with(&dir, tiny()).unwrap()).unwrap();
        prop_assert_eq!(observe(&reopened), truth);
        let reopened_depths: Vec<usize> = reopened
            .branch_names()
            .iter()
            .map(|b| reopened.branch(b).unwrap().history().len())
            .collect();
        prop_assert_eq!(reopened_depths, depths, "per-branch history depth");
    }
}

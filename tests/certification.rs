//! End-to-end certification: the full suite over every data type, plus
//! direct obligation-level checks on paper scenarios.

use peepul::types::or_set_space::{OrSetOp, OrSetQuery, OrSetSpace};
use peepul::types::queue::{Queue, QueueOp};
use peepul::verify::suite::{certify_all, SuiteConfig};
use peepul::verify::{MergePolicy, RandomConfig, Runner, Schedule, Step};

fn quick_config() -> SuiteConfig {
    SuiteConfig {
        bounded_steps: 3,
        bounded_branches: 2,
        random_runs: 4,
        random: RandomConfig {
            steps: 80,
            max_branches: 4,
            ..RandomConfig::default()
        },
    }
}

#[test]
fn every_data_type_certifies() {
    for summary in certify_all(&quick_config()) {
        assert!(
            summary.passed(),
            "{} failed certification: {:?}",
            summary.name,
            summary.failure
        );
        assert!(summary.obligations.phi_do > 0, "{}", summary.name);
        assert!(summary.obligations.phi_merge > 0, "{}", summary.name);
        assert!(summary.obligations.phi_spec > 0, "{}", summary.name);
    }
}

#[test]
fn space_optimized_types_are_certified_relative_to_the_envelope() {
    let summaries = certify_all(&quick_config());
    let by_name = |n: &str| {
        summaries
            .iter()
            .find(|s| s.name == n)
            .unwrap_or_else(|| panic!("missing summary {n}"))
    };
    for name in [
        "OR-set-space",
        "OR-set-spacetime",
        "Enable-wins flag (space)",
    ] {
        assert_eq!(by_name(name).policy, MergePolicy::PaperEnvelope, "{name}");
    }
    for name in ["OR-set", "Replicated queue", "Mergeable log"] {
        assert_eq!(by_name(name).policy, MergePolicy::General, "{name}");
        assert_eq!(by_name(name).skipped_merges, 0, "{name}");
    }
}

/// The §2.1.2 motivating scenario, as a certified execution: duplicate add
/// refreshing the timestamp defeats a concurrent remove.
#[test]
fn paper_section_2_1_2_scenario_certifies() {
    let schedule: Schedule<OrSetOp<u32>> = [
        Step::Do {
            branch: 0,
            op: OrSetOp::Add(7),
        },
        Step::CreateBranch { from: 0 },
        Step::Do {
            branch: 0,
            op: OrSetOp::Add(7), // refresh on b0
        },
        Step::Do {
            branch: 1,
            op: OrSetOp::Remove(7), // concurrent remove on b1
        },
        Step::Merge { into: 0, from: 1 },
    ]
    .into_iter()
    .collect();
    let mut runner: Runner<OrSetSpace<u32>> =
        Runner::new().with_queries(vec![OrSetQuery::Lookup(7)]);
    runner
        .run_schedule(&schedule)
        .expect("the refresh-vs-remove scenario satisfies all obligations");
    // The Lookup(7) probe fired after every DO and after the merge, and
    // Φ_spec checked it answered Present(true) post-merge — the value the
    // specification demands (the refresh-add is unseen by the remove).
    assert!(runner.report().phi_spec >= 4);
}

/// Fig. 11's execution as a certified schedule, including the queue axioms
/// implicitly via Φ_spec on every dequeue.
#[test]
fn paper_figure_11_certifies() {
    let mut steps: Vec<Step<QueueOp<u32>>> = (1..=5)
        .map(|v| Step::Do {
            branch: 0,
            op: QueueOp::Enqueue(v),
        })
        .collect();
    steps.push(Step::CreateBranch { from: 0 }); // b1 = A
    steps.push(Step::CreateBranch { from: 0 }); // b2 = B
    steps.extend([
        Step::Do {
            branch: 1,
            op: QueueOp::Dequeue,
        },
        Step::Do {
            branch: 1,
            op: QueueOp::Dequeue,
        },
        Step::Do {
            branch: 2,
            op: QueueOp::Dequeue,
        },
        Step::Do {
            branch: 2,
            op: QueueOp::Enqueue(6),
        },
        Step::Do {
            branch: 2,
            op: QueueOp::Enqueue(7),
        },
        Step::Do {
            branch: 1,
            op: QueueOp::Enqueue(8),
        },
        Step::Do {
            branch: 1,
            op: QueueOp::Enqueue(9),
        },
        Step::Merge { into: 1, from: 2 },
    ]);
    let schedule: Schedule<QueueOp<u32>> = steps.into_iter().collect();
    let mut runner: Runner<Queue<u32>> = Runner::new();
    runner.run_schedule(&schedule).expect("Fig. 11 certifies");
    let report = runner.report();
    assert_eq!(report.phi_merge, 1);
    assert_eq!(report.phi_do, 12);
}

//! Golden test of the exported `peepul::prelude` surface — an offline
//! stand-in for `cargo-public-api` (the build container has no registry
//! access to install it).
//!
//! The `surface!` macro below does two jobs at once for every listed name:
//!
//! 1. **imports** it from `peepul::prelude`, so a renamed or removed
//!    export breaks this test at *compile* time;
//! 2. **stringifies** it into a list whose sortedness and size are
//!    asserted, so the golden stays reviewable and size changes are
//!    deliberate.
//!
//! Known limitation of the offline stand-in: removals and renames are
//! caught at compile time, but a *new* prelude export ships without
//! failing this test (detecting additions needs reflection over the
//! module, which `cargo-public-api` does and a test cannot) — keeping
//! additions in sync here is a review convention, aided by the pinned
//! count below. The deprecated string-addressed `BranchStore` shims of the
//! 0.2 release are gone (their one-release grace window closed with the
//! `peepul-net` release); the replication surface (`Replica`, `Remote`,
//! transports, `AntiEntropy`, `Wire`, `TrackOutcome`) is part of the
//! golden instead. The codec unification added `CommitMeta` (the parsed
//! commit record, used by both the reopen path and fetch negotiation) and
//! removed the `Hash`-stream machinery from `peepul::store`
//! (`Sha256Hasher` is gone; `canonical_bytes`/`content_id` now take
//! `Wire`, the single canonical codec every `Mrdt` carries). The service
//! layer added `FrameServer`/`FrameService` — the shared accept-loop
//! machinery the `peepul-server` daemon is built on. The storage engine
//! added `FlushPolicy` (group commit: who decides when appends reach the
//! platter) and `SweepStats` (what reference-tracing GC found and freed).
//! Replication certification (Φ_ra) added `HistoryObserver` and
//! `ReplicationMutation` on the net side (witness recording and the
//! mutant kill-gate's fault switch) and `FleetConfig`, `HistoryRecorder`,
//! `RaLinOptions` and `WitnessHistory` on the verify side (the recorded
//! fleet execution and its replication-aware linearizability check). The
//! observability spine added `Obs`/`ObsConfig` (the shared handle and its
//! knobs), the per-subsystem attach points `StoreMetrics`/`NetMetrics`,
//! and `StorageInfo` (the backend's self-description behind the
//! `serve-status` disk fields).

macro_rules! surface {
    ($($name:ident),* $(,)?) => {
        #[allow(unused_imports)]
        use peepul::prelude::{$($name),*};

        fn surface_names() -> Vec<&'static str> {
            vec![$(stringify!($name)),*]
        }
    };
}

// The golden list: every name `peepul::prelude` exports, sorted.
surface![
    AbstractOf,
    AbstractState,
    AntiEntropy,
    Backend,
    BoundedChecker,
    BoundedConfig,
    BranchId,
    BranchMut,
    BranchRef,
    BranchStore,
    Certified,
    ChannelTransport,
    Chat,
    Cluster,
    CommitMeta,
    Counter,
    EwFlag,
    EwFlagSpace,
    FaultInjector,
    FleetConfig,
    FlushPolicy,
    FrameServer,
    FrameService,
    GMap,
    GSet,
    HistoryObserver,
    HistoryRecorder,
    LwwRegister,
    MemoryBackend,
    MergeableLog,
    Mrdt,
    MrdtMap,
    NetError,
    NetMetrics,
    Obs,
    ObsConfig,
    OrSet,
    OrSetSpace,
    OrSetSpacetime,
    PnCounter,
    Queue,
    RaLinOptions,
    Remote,
    Replica,
    ReplicaId,
    ReplicationMutation,
    Runner,
    SegmentBackend,
    SegmentOptions,
    SimulationRelation,
    Specification,
    StorageInfo,
    StoreError,
    StoreLts,
    StoreMetrics,
    SweepStats,
    TcpServer,
    TcpTransport,
    Timestamp,
    TrackOutcome,
    Transaction,
    Transport,
    Wire,
    WitnessHistory,
];

#[test]
fn prelude_surface_matches_golden() {
    let golden = surface_names();
    let mut sorted = golden.clone();
    sorted.sort_unstable();
    assert_eq!(
        golden, sorted,
        "keep the golden list sorted so diffs stay reviewable"
    );
    assert_eq!(
        golden.len(),
        64,
        "prelude surface changed size — update the golden list *and* the \
         expected count deliberately"
    );
}

/// Key signatures of the redesigned API, pinned structurally: if a
/// signature drifts (e.g. `read` starts needing `&mut`, or `lca_state`
/// regresses to `&mut self`), this stops compiling.
#[test]
fn pinned_signatures_still_hold() {
    use peepul::prelude::*;
    use peepul::types::counter::{Counter, CounterQuery};

    // read and lca_state take &self.
    let _read: fn(&BranchStore<Counter>, &str, &CounterQuery) -> Result<u64, StoreError> =
        |s, b, q| s.read(b, q);
    fn _lca(
        s: &BranchStore<Counter>,
        a: &str,
        b: &str,
    ) -> Result<std::sync::Arc<Counter>, StoreError> {
        s.lca_state(a, b)
    }
    // branch (read handle) takes &self; branch_mut takes &mut self.
    fn _branch<'s>(
        s: &'s BranchStore<Counter>,
        b: &str,
    ) -> Result<BranchRef<'s, Counter, MemoryBackend>, StoreError> {
        s.branch(b)
    }
    fn _branch_mut<'s>(
        s: &'s mut BranchStore<Counter>,
        b: &str,
    ) -> Result<BranchMut<'s, Counter, MemoryBackend>, StoreError> {
        s.branch_mut(b)
    }
    // BranchId construction is fallible (validation) and cheap to clone.
    let id: BranchId = BranchId::new("main").unwrap();
    let _ = id.clone();
    // The typed reopen path: a cold backend comes back as a typed store.
    fn _open(b: MemoryBackend) -> Result<BranchStore<Counter>, StoreError> {
        BranchStore::open(b)
    }
    fn _open_based(b: MemoryBackend) -> Result<BranchStore<Counter>, StoreError> {
        BranchStore::open_with_base(b, 7)
    }
}

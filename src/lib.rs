//! **Peepul** — certified mergeable replicated data types in Rust.
//!
//! A production-grade reproduction of *“Certified Mergeable Replicated
//! Data Types”* (PLDI 2022): efficient purely functional data structures
//! promoted to replicated data types by a three-way merge, running on a
//! Git-like branch-and-merge store, with an executable certification
//! harness that checks the paper's proof obligations on every explored
//! execution.
//!
//! # Workspace map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] | the formal model: [`core::Mrdt`], abstract executions, specifications, simulation relations, proof obligations |
//! | [`types`] | the certified data types: counters, flags, registers, sets, logs, maps, three OR-sets, the replicated queue, the chat app |
//! | [`store`] | the Git-like store: branches, commit DAG, recursive LCAs, Lamport timestamps, SHA-256 content addressing, pluggable backends (in-memory + on-disk segment), merge memoization, the formal LTS |
//! | [`net`] | true multi-store replication: the `Transport` abstraction (in-process channels + TCP), Git-style fetch/push negotiation with hash-verified ingest, anti-entropy, replicated clusters with fault injection |
//! | [`verify`] | the certification harness: bounded-exhaustive + randomized obligation checking |
//! | [`obs`] | the observability spine: atomic metrics registry, fixed-bucket latency histograms, Prometheus-style exposition, bounded trace ring |
//! | [`quark`] | the evaluation baseline: relational-reification merges à la Quark (OOPSLA 2019) |
//!
//! # Quickstart
//!
//! The public API separates **updates** (state-transforming operations,
//! addressed through typed branch handles, batchable into transactions)
//! from **queries** (pure observations, served commit-free from `&store`):
//!
//! ```
//! use peepul::store::BranchStore;
//! use peepul::types::or_set_space::{OrSetOp, OrSetOutput, OrSetQuery, OrSetSpace};
//!
//! # fn main() -> Result<(), peepul::store::StoreError> {
//! // A replicated shopping list with add-wins conflict resolution.
//! let mut db: BranchStore<OrSetSpace<String>> = BranchStore::new("laptop");
//! db.branch_mut("laptop")?.apply(&OrSetOp::Add("milk".into()))?;
//!
//! // `fork` returns a validated BranchId — typos fail here, not mid-merge.
//! let phone = db.branch_mut("laptop")?.fork("phone")?;
//!
//! // Concurrently: the phone checks milk off; the laptop batches a
//! // shopping trip into ONE commit with a transaction.
//! db.branch_mut(&phone)?.apply(&OrSetOp::Remove("milk".into()))?;
//! db.branch_mut("laptop")?.transaction(|tx| {
//!     tx.apply(&OrSetOp::Add("milk".into()));
//!     tx.apply(&OrSetOp::Add("eggs".into()));
//! })?;
//!
//! db.branch_mut("laptop")?.merge_from(&phone)?;
//!
//! // Reads are commit-free: `&db`, no commit minted, no backend write.
//! let v = db.read("laptop", &OrSetQuery::Lookup("milk".into()))?;
//! assert_eq!(v, OrSetOutput::Present(true)); // add wins
//! # Ok(())
//! # }
//! ```
//!
//! # Certification
//!
//! Every data type carries its declarative specification `F_τ` and
//! replication-aware simulation relation `R_sim`; the harness checks the
//! Table 2 obligations (`Φ_do`, `Φ_merge`, `Φ_spec`, `Φ_con`) on
//! bounded-exhaustive and randomized store executions:
//!
//! ```
//! use peepul::types::pn_counter::{PnCounter, PnCounterOp, PnCounterQuery};
//! use peepul::verify::{BoundedChecker, BoundedConfig};
//!
//! let stats = BoundedChecker::<PnCounter>::new(BoundedConfig {
//!     max_steps: 3,
//!     max_branches: 2,
//!     alphabet: vec![PnCounterOp::Increment, PnCounterOp::Decrement],
//!     queries: vec![PnCounterQuery::Value],
//! })
//! .run()
//! .expect("every execution satisfies every obligation");
//! assert!(stats.obligations.total() > 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for the reproduction of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use peepul_core as core;
pub use peepul_net as net;
pub use peepul_obs as obs;
pub use peepul_quark as quark;
pub use peepul_store as store;
pub use peepul_types as types;
pub use peepul_verify as verify;

/// The most commonly used items, for glob import.
///
/// The exported name set is pinned by the `tests/api_surface.rs` golden
/// test — changing it is an API decision, not an accident.
///
/// ```
/// use peepul::prelude::*;
///
/// let mut db: BranchStore<Counter> = BranchStore::new("main");
/// db.branch_mut("main")
///     .unwrap()
///     .apply(&peepul::types::counter::CounterOp::Increment)
///     .unwrap();
/// ```
pub mod prelude {
    pub use peepul_core::{
        AbstractOf, AbstractState, Certified, Mrdt, ReplicaId, SimulationRelation, Specification,
        Timestamp, Wire,
    };
    pub use peepul_net::{
        AntiEntropy, ChannelTransport, Cluster, FaultInjector, FrameServer, FrameService,
        HistoryObserver, NetError, NetMetrics, Remote, Replica, ReplicationMutation, TcpServer,
        TcpTransport, Transport,
    };
    pub use peepul_obs::{Obs, ObsConfig};
    pub use peepul_store::{
        Backend, BranchId, BranchMut, BranchRef, BranchStore, CommitMeta, FlushPolicy,
        MemoryBackend, SegmentBackend, SegmentOptions, StorageInfo, StoreError, StoreLts,
        StoreMetrics, SweepStats, TrackOutcome, Transaction,
    };
    pub use peepul_types::{
        Chat, Counter, EwFlag, EwFlagSpace, GMap, GSet, LwwRegister, MergeableLog, MrdtMap, OrSet,
        OrSetSpace, OrSetSpacetime, PnCounter, Queue,
    };
    pub use peepul_verify::{
        BoundedChecker, BoundedConfig, FleetConfig, HistoryRecorder, RaLinOptions, Runner,
        WitnessHistory,
    };
}

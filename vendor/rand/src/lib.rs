//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 series), vendored so the workspace builds without network
//! access. Only the surface the Peepul workspace uses is provided:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — seeded, reproducible
//!   generators (the workspace never uses OS entropy),
//! * [`Rng::gen_range`] over half-open integer ranges,
//! * [`Rng::gen_bool`] and [`Rng::gen`] for `f64`/`bool`/integers.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `rand_xoshiro` uses — so streams are high-quality
//! and, critically for the certification harness, *stable across runs and
//! platforms* for a given seed.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A random number generator: the object-safe core every adapter builds on.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Draws one value from the generator's uniform bit stream.
    fn from_uniform_bits(rng: &mut dyn RngCore) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_uniform_bits(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_uniform_bits(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_uniform_bits(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_uniform_bits(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] — mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::from_uniform_bits(self) < p
    }

    /// One value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_uniform_bits(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12), this is a small
    /// non-cryptographic PRNG — entirely adequate for randomized testing
    /// and benchmarking, which is all this workspace uses it for.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20u32);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0u32;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.25) {
                hits += 1;
            }
        }
        assert!((1_500..3_500).contains(&hits), "p=0.25 wildly off: {hits}");
    }
}

//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored so the workspace builds without network access.
//!
//! Benchmarks compile and *run*: each `Bencher::iter` target is warmed up
//! and then timed over enough iterations to fill the group's measurement
//! time, and the median per-iteration time is printed as
//! `group/function/param  time: …`. There is no statistical analysis, no
//! HTML report and no saved baselines — `cargo bench` here is a smoke-run
//! plus a rough number, and `cargo bench --no-run` (the CI gate) is a pure
//! compile check. The real criterion can be swapped back in by deleting
//! `vendor/criterion` once the build environment has registry access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark context handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` narrows which benchmarks run. Flags the
        // real criterion accepts are ignored — including the value of
        // value-taking flags like `--sample-size 50`, which must not be
        // mistaken for a filter.
        const BOOLEAN_FLAGS: &[&str] = &["--bench", "--list", "--exact", "--nocapture"];
        let mut filter = None;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            if a.starts_with('-') {
                let takes_value = !BOOLEAN_FLAGS.contains(&a.as_str()) && !a.contains('=');
                if takes_value {
                    args.next();
                }
            } else {
                filter = Some(a);
                break;
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; argument handling already
    /// happens in `Default`, so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("").bench_function(id, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered into the id.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("merge", 1000)` → id `merge/1000`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the wall-clock budget for one benchmark's measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = self.full_id(&id.id);
        if self.criterion.matches(&full) {
            let mut b = Bencher::new(self.sample_size, self.measurement_time);
            f(&mut b, input);
            b.report(&full);
        }
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = self.full_id(&id.to_string());
        if self.criterion.matches(&full) {
            let mut b = Bencher::new(self.sample_size, self.measurement_time);
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Ends the group (output already happened per-benchmark).
    pub fn finish(self) {}

    fn full_id(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        }
    }
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    median_ns: Option<f64>,
}

/// Whether quick mode is on: `PEEPUL_BENCH_QUICK=1` (any non-empty value
/// but `0`) caps sample sizes and measurement budgets so a full
/// `cargo bench` finishes in seconds — the CI bench job's mode.
fn quick_mode() -> bool {
    std::env::var("PEEPUL_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        let (sample_size, measurement_time) = if quick_mode() {
            (
                sample_size.min(5),
                measurement_time.min(Duration::from_millis(60)),
            )
        } else {
            (sample_size, measurement_time)
        };
        Bencher {
            sample_size,
            measurement_time,
            median_ns: None,
        }
    }

    /// Times `routine`, retaining the median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how many iterations fit in one sample?
        let calib = Instant::now();
        let mut calib_iters = 0u64;
        while calib.elapsed() < self.measurement_time / 10 {
            black_box(routine());
            calib_iters += 1;
        }
        // Calibration observed measurement_time/10; scale back up so the
        // sample loop actually fills the configured measurement budget.
        let per_sample = (calib_iters.saturating_mul(10) / self.sample_size.max(1) as u64).max(1);

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples_ns[samples_ns.len() / 2]);
    }

    fn report(&self, id: &str) {
        if let Some(ns) = self.median_ns {
            println!("{id:<50} time: {}", fmt_ns(ns));
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark in this group (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_produces_runnable_fn() {
        benches();
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("merge", 1000).id, "merge/1000");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}

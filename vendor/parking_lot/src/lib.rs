//! Offline, API-compatible subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate, vendored so
//! the workspace builds without network access.
//!
//! The key API difference from `std::sync` that callers rely on is that
//! `lock()` returns the guard directly instead of a `Result` — there is no
//! poisoning. This stub wraps the `std` primitives and recovers from
//! poisoning transparently, which gives exactly those semantics; it simply
//! lacks `parking_lot`'s performance characteristics, which none of the
//! tests depend on.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn lock_recovers_from_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

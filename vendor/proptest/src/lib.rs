//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored so the
//! workspace builds without network access.
//!
//! What is provided — exactly the surface the Peepul workspace uses:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` and `boxed`,
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`strategy::any`], [`bool::ANY`], [`collection::vec`] and the weighted
//!   union behind [`prop_oneof!`],
//! * the [`proptest!`] macro (block form with optional
//!   `#![proptest_config(..)]`, and closure form) plus [`prop_assert!`] /
//!   [`prop_assert_eq!`],
//! * [`test_runner::ProptestConfig`] with `with_cases`, honouring two
//!   environment overrides: `PROPTEST_CASES_SCALE` multiplies every case
//!   count including explicit `with_cases(N)` call sites (the lever the
//!   nightly CI job uses), and `PROPTEST_CASES` replaces the default count
//!   for properties that don't call `with_cases`.
//!
//! What is *not* provided: shrinking. A failing case reports the generated
//! inputs as-is (rendered via `Debug` to stderr before the panic
//! propagates) instead of a minimised counterexample. Cases are generated
//! from a fixed per-test seed, so failures are reproducible run-to-run.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test values.
    ///
    /// Unlike real proptest there is no value *tree* (no shrinking): a
    /// strategy draws a single value from a seeded RNG.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy (note: `prop_map`/`boxed` require `Sized`, so
    /// the trait stays object-safe).
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy — the integer and bool
    /// primitives, which is all the workspace draws with [`any`].
    pub trait Arbitrary: Debug + Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rand::Standard::from_uniform_bits(rng)
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The "any value of `T`" strategy.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if hi < <$t>::MAX {
                        rng.gen_range(lo..hi + 1)
                    } else if lo > <$t>::MIN {
                        // Sample lo-1..hi then shift to cover hi itself.
                        rng.gen_range(lo - 1..hi) + 1
                    } else {
                        // Full domain.
                        rand::Standard::from_uniform_bits(rng)
                    }
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Weighted union of strategies — the implementation behind
    /// [`crate::prop_oneof!`].
    pub struct Union<V> {
        variants: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(variants: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = variants.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
            Union { variants, total }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let mut roll = rng.gen_range(0..self.total);
            for (w, s) in &self.variants {
                if roll < *w as u64 {
                    return s.generate(rng);
                }
                roll -= *w as u64;
            }
            unreachable!("roll bounded by total weight")
        }
    }

    impl<V> Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("variants", &self.variants.len())
                .finish()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec`s with sizes drawn from `size` and elements from
    /// `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// The strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rand::Standard::from_uniform_bits(rng)
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    /// How many cases [`crate::proptest!`] runs per property.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases (scaled by `PROPTEST_CASES_SCALE`
        /// if that environment variable is set — the nightly CI lever).
        pub fn with_cases(cases: u32) -> Self {
            let scale = std::env::var("PROPTEST_CASES_SCALE")
                .ok()
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(1)
                .max(1);
            ProptestConfig {
                cases: cases.saturating_mul(scale),
            }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases (real proptest defaults to 256; the smaller default
        /// keeps the PR gate fast), overridable via `PROPTEST_CASES`.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(64);
            ProptestConfig::with_cases(cases)
        }
    }

    /// Prints the generated inputs of the current case if the property
    /// body panics — the stub's stand-in for proptest's minimised
    /// counterexample (no shrinking: the case is reported as generated).
    #[derive(Debug)]
    pub struct CaseReporter {
        case: u32,
        rendered: String,
    }

    impl CaseReporter {
        /// Arms a reporter for case number `case` with the inputs already
        /// rendered via `Debug` (rendered eagerly because the body may
        /// consume the values).
        pub fn new(case: u32, rendered: String) -> Self {
            CaseReporter { case, rendered }
        }
    }

    impl Drop for CaseReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest (vendored stub, no shrinking): failing case #{} with inputs:\n{}",
                    self.case, self.rendered
                );
            }
        }
    }

    /// Seeds one RNG per property from the property's name, so failures
    /// reproduce run-to-run (FNV-1a over the name).
    pub fn rng_for(test_name: &str) -> rand::rngs::StdRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(h)
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
///
/// Without shrinking this is a plain `assert!` — the panic message carries
/// the generated inputs via the property arguments' `Debug` rendering.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Weighted choice between strategies: `prop_oneof![3 => a, 1 => b]` or
/// unweighted `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Defines property tests (block form) or runs one property inline
/// (closure form). See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (|($($arg:ident in $strategy:expr),* $(,)?)| $body:block) => {{
        let __config = $crate::test_runner::ProptestConfig::default();
        let mut __rng = $crate::test_runner::rng_for(concat!(file!(), ":", line!()));
        // Each strategy is built once, bound under its argument's name; the
        // per-case `let` below shadows it with the generated value.
        $(let $arg = $strategy;)*
        for __case in 0..__config.cases {
            $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)*
            let __reporter = $crate::test_runner::CaseReporter::new(
                __case,
                format!("{:#?}", ($(&$arg,)*)),
            );
            $body
            drop(__reporter);
        }
    }};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_properties! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_properties! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] — expands each property `fn`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_properties {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                // Each strategy is built once, bound under its argument's
                // name; the per-case `let` shadows it with the value.
                $(let $arg = $strategy;)*
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)*
                    let __reporter = $crate::test_runner::CaseReporter::new(
                        __case,
                        format!("{:#?}", ($(&$arg,)*)),
                    );
                    $body
                    drop(__reporter);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_maps_compose(
            v in crate::collection::vec((any::<u8>(), 0u32..64).prop_map(|(a, b)| a as u32 + b), 0..20)
        ) {
            prop_assert!(v.len() < 20);
            for x in v {
                prop_assert!(x < 255 + 64);
            }
        }

        #[test]
        fn oneof_respects_variants(k in 0u8..1) {
            let s = prop_oneof![
                1 => Just(10u32),
                2 => (0u32..5).prop_map(|x| x + 20),
            ];
            let mut rng = crate::test_runner::rng_for("oneof");
            let _ = k;
            for _ in 0..50 {
                let v = s.generate(&mut rng);
                prop_assert!(v == 10 || (20..25).contains(&v), "unexpected {v}");
            }
        }
    }

    #[test]
    fn closure_form_runs() {
        let mut total = 0u64;
        proptest!(|(x in 1u8..3, b in crate::bool::ANY)| {
            let _ = b;
            total += x as u64;
        });
        assert!(total > 0, "closure body must have run");
    }

    #[test]
    fn inclusive_size_ranges_hit_upper_bound() {
        let s = crate::collection::vec(0u8..2, 0..=3);
        let mut rng = crate::test_runner::rng_for("sizes");
        let mut seen_max = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 3);
            seen_max |= v.len() == 3;
        }
        assert!(seen_max, "inclusive upper bound never generated");
    }
}

//! Runs the certification harness over every data type in the library and
//! prints the effort/cost table (the workspace's Table 3 analogue).
//!
//! Run with: `cargo run --release --example certify_all`

use peepul::verify::suite::{certify_all, SuiteConfig};
use peepul::verify::RandomConfig;

fn main() {
    let config = SuiteConfig {
        bounded_steps: 4,
        bounded_branches: 2,
        random_runs: 10,
        random: RandomConfig {
            steps: 120,
            max_branches: 4,
            ..RandomConfig::default()
        },
    };
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>10} {:>9} {:>8}",
        "MRDT", "exhaustive", "transitions", "obligations", "time (ms)", "envelope", "verdict"
    );
    println!("{}", "-".repeat(96));
    let mut all_passed = true;
    for s in certify_all(&config) {
        println!(
            "{:<28} {:>10} {:>12} {:>12} {:>10} {:>9} {:>8}",
            s.name,
            s.bounded_executions,
            s.bounded_transitions + s.random_transitions,
            s.obligations.total(),
            s.total_time().as_millis(),
            match s.policy {
                peepul::verify::MergePolicy::General => "general",
                peepul::verify::MergePolicy::PaperEnvelope => "paper",
            },
            if s.passed() { "PASS" } else { "FAIL" }
        );
        if let Some(f) = &s.failure {
            all_passed = false;
            println!("    counterexample: {f}");
        }
    }
    println!("{}", "-".repeat(96));
    println!(
        "envelope 'paper' = certified relative to the paper's strong Ψ_lca store assumption;\n\
         see DESIGN.md §9 — the space-optimized types cannot merge correctly outside it."
    );
    if all_passed {
        println!(
            "every data type certified: Φ_do ∧ Φ_merge ∧ Φ_spec ∧ Φ_con on all explored executions"
        );
    } else {
        std::process::exit(1);
    }
}

//! Quickstart: a replicated shopping list over the Git-like branch store.
//!
//! Demonstrates the core workflow — fork, diverge, merge — with the
//! space-efficient add-wins OR-set, including the conflict the paper opens
//! with: one device removes an item while another concurrently re-adds it.
//! Along the way it shows the three pillars of the redesigned API: typed
//! branch handles, transactions (one commit per batch), and the
//! commit-free query path.
//!
//! Run with: `cargo run --example quickstart`

use peepul::store::{BranchStore, StoreError};
use peepul::types::or_set_space::{OrSetOp, OrSetOutput, OrSetQuery, OrSetSpace};

fn main() -> Result<(), StoreError> {
    let mut db: BranchStore<OrSetSpace<String>> = BranchStore::new("laptop");
    let add = |x: &str| OrSetOp::Add(x.to_owned());
    let remove = |x: &str| OrSetOp::Remove(x.to_owned());

    // Build the list on the laptop — one transaction, one commit, one
    // backend write for the whole batch.
    db.branch_mut("laptop")?.transaction(|tx| {
        for item in ["milk", "bread", "eggs"] {
            tx.apply(&add(item));
        }
    })?;
    println!("laptop list: {:?}", db.state("laptop")?.elements());

    // The phone clones the list and goes offline. `fork` hands back a
    // validated BranchId — a typo in a branch name fails at handle
    // creation, never deep inside a merge.
    let phone = db.branch_mut("laptop")?.fork("phone")?;

    // Offline edits on both devices:
    db.branch_mut(&phone)?.transaction(|tx| {
        tx.apply(&remove("milk")); // phone: bought the milk
        tx.apply(&add("coffee")); // phone: need coffee
    })?;
    db.branch_mut("laptop")?.apply(&add("milk"))?; // laptop: need milk AGAIN (re-add)
    db.branch_mut("laptop")?.apply(&remove("bread"))?; // laptop: bread already home

    println!("phone  diverged: {:?}", db.state(&phone)?.elements());
    println!("laptop diverged: {:?}", db.state("laptop")?.elements());

    // Sync: the three-way merge resolves every conflict without manual
    // intervention. The concurrent remove("milk") / add("milk") conflict
    // resolves add-wins because the laptop's re-add carries a fresh
    // timestamp the phone's remove never observed.
    db.branch_mut("laptop")?.merge_from(&phone)?;
    db.branch_mut(&phone)?.merge_from("laptop")?;

    let laptop = db.state("laptop")?;
    println!("after sync:      {:?}", laptop.elements());
    assert_eq!(
        laptop.elements(),
        db.state(&phone)?.elements(),
        "replicas converged"
    );

    // Queries are commit-free: they run against `&db`, mint no commit and
    // write nothing to the backend.
    let commits_before = db.commit_count();
    let v = db.read("laptop", &OrSetQuery::Lookup("milk".into()))?;
    assert_eq!(
        v,
        OrSetOutput::Present(true),
        "add wins over concurrent remove"
    );
    let v = db.read("laptop", &OrSetQuery::Lookup("bread".into()))?;
    assert_eq!(v, OrSetOutput::Present(false), "plain remove still removes");
    assert_eq!(db.commit_count(), commits_before, "reads mint no commits");

    println!(
        "history: {} commits on a Git-like DAG",
        db.branch("laptop")?.history().len()
    );
    Ok(())
}

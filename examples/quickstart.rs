//! Quickstart: a replicated shopping list over the Git-like branch store.
//!
//! Demonstrates the core workflow — fork, diverge, merge — with the
//! space-efficient add-wins OR-set, including the conflict the paper opens
//! with: one device removes an item while another concurrently re-adds it.
//!
//! Run with: `cargo run --example quickstart`

use peepul::store::{BranchStore, StoreError};
use peepul::types::or_set_space::{OrSetOp, OrSetSpace, OrSetValue};

fn main() -> Result<(), StoreError> {
    let mut db: BranchStore<OrSetSpace<String>> = BranchStore::new("laptop");
    let add = |x: &str| OrSetOp::Add(x.to_owned());
    let remove = |x: &str| OrSetOp::Remove(x.to_owned());

    // Build the list on the laptop.
    for item in ["milk", "bread", "eggs"] {
        db.apply("laptop", &add(item))?;
    }
    println!("laptop list: {:?}", db.state("laptop")?.elements());

    // The phone clones the list and goes offline.
    db.fork("phone", "laptop")?;

    // Offline edits on both devices:
    db.apply("phone", &remove("milk"))?; // phone: bought the milk
    db.apply("phone", &add("coffee"))?; // phone: need coffee
    db.apply("laptop", &add("milk"))?; // laptop: need milk AGAIN (re-add)
    db.apply("laptop", &remove("bread"))?; // laptop: bread already home

    println!("phone  diverged: {:?}", db.state("phone")?.elements());
    println!("laptop diverged: {:?}", db.state("laptop")?.elements());

    // Sync: the three-way merge resolves every conflict without manual
    // intervention. The concurrent remove("milk") / add("milk") conflict
    // resolves add-wins because the laptop's re-add carries a fresh
    // timestamp the phone's remove never observed.
    db.merge("laptop", "phone")?;
    db.merge("phone", "laptop")?;

    let laptop = db.state("laptop")?;
    let phone = db.state("phone")?;
    println!("after sync:      {:?}", laptop.elements());
    assert_eq!(laptop.elements(), phone.elements(), "replicas converged");

    let v = db.apply("laptop", &OrSetOp::Lookup("milk".into()))?;
    assert_eq!(
        v,
        OrSetValue::Present(true),
        "add wins over concurrent remove"
    );
    let v = db.apply("laptop", &OrSetOp::Lookup("bread".into()))?;
    assert_eq!(v, OrSetValue::Present(false), "plain remove still removes");

    println!(
        "history: {} commits on a Git-like DAG",
        db.history("laptop")?.len()
    );
    Ok(())
}

//! Two *independent* stores synchronising over a real TCP socket — the
//! `peepul-net` quickstart.
//!
//! A "cloud" replica serves its store over TCP; a laptop replica with its
//! own store and its own divergent edits pulls (fetch + three-way merge)
//! and pushes the merge back. Only missing content-addressed objects cross
//! the wire, every one verified against its SHA-256 address on arrival.
//!
//! Run: `cargo run --example replicated_pair`

use peepul::net::{PullOutcome, Remote, Replica, TcpServer, TcpTransport};
use peepul::store::{MemoryBackend, StoreError};
use peepul::types::or_set::{OrSetOp, OrSetOutput, OrSetQuery};
use peepul::types::or_set_space::OrSetSpace;

type List = OrSetSpace<String>;

fn add(item: &str) -> OrSetOp<String> {
    OrSetOp::Add(item.into())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The cloud replica: its own store, backend and clock. `Replica::open`
    // derives a disjoint replica-id range from each name, so independent
    // peers never mint colliding timestamps.
    let cloud: Replica<List, _> = Replica::open("cloud", "main", MemoryBackend::new())?;
    cloud.with_store(|s| -> Result<(), StoreError> {
        s.branch_mut("main")?.transaction(|tx| {
            tx.apply(&add("milk"));
            tx.apply(&add("eggs"));
        })?;
        Ok(())
    })?;
    let server = TcpServer::spawn(cloud.clone())?;
    println!("cloud replica serving on {}", server.addr());

    // The laptop: an *independent* store that already made its own edit
    // while offline.
    let laptop: Replica<List, _> = Replica::open("laptop", "main", MemoryBackend::new())?;
    laptop.with_store(|s| s.branch_mut("main")?.apply(&add("coffee")).map(|_| ()))?;

    // Pull: fetch over the socket, then a real three-way merge.
    let mut remote = Remote::new("cloud", TcpTransport::connect(server.addr())?);
    let pull = laptop.pull(&mut remote, "main")?;
    println!(
        "pull: {:?} — {} commits + {} states in {} round trips",
        pull.outcome,
        pull.fetch.commits_received,
        pull.fetch.states_received,
        pull.fetch.round_trips,
    );
    assert_eq!(pull.outcome, PullOutcome::Merged);
    assert_eq!(pull.fetch.round_trips, 3, "refs, want/have, states");

    // Both sides' edits survived the merge.
    for item in ["milk", "eggs", "coffee"] {
        let v = laptop.read("main", &OrSetQuery::Lookup(item.into()))?;
        assert_eq!(v, OrSetOutput::Present(true), "{item} must be on the list");
    }

    // Push the merge back; the cloud fast-forwards and the two stores end
    // byte-identical, down to the Merkle head.
    let push = laptop.push(&mut remote, "main")?;
    println!(
        "push: {} commits + {} states uploaded",
        push.commits_sent, push.states_sent
    );
    assert_eq!(cloud.head_id("main")?, laptop.head_id("main")?);
    assert_eq!(cloud.object_count(), laptop.object_count());
    let OrSetOutput::Elements(items) = cloud.read("main", &OrSetQuery::Read)? else {
        panic!("read returns elements");
    };
    println!("cloud list after sync: {items:?}");
    assert_eq!(items, ["coffee", "eggs", "milk"]);

    println!("ok: two stores, one socket, zero shared memory");
    Ok(())
}

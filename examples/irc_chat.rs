//! IRC-style decentralised chat (paper §5.1) over the branch store.
//!
//! Three users each hold a replica (branch) of the whole chat — a map of
//! channels to mergeable logs — post while partitioned, and converge by
//! gossip merges. Messages in every channel end up in reverse
//! chronological order on every replica.
//!
//! Run with: `cargo run --example irc_chat`

use peepul::store::{BranchStore, StoreError};
use peepul::types::chat::{Chat, ChatOp, ChatQuery};

fn send(ch: &str, m: &str) -> ChatOp {
    ChatOp::Send(ch.to_owned(), m.to_owned())
}

fn show(db: &BranchStore<Chat>, user: &str, channel: &str) -> Result<(), StoreError> {
    println!("-- {user}'s view of {channel} --");
    // Reading a channel is a commit-free query on `&db`.
    for (t, m) in db.read(user, &ChatQuery::Read(channel.to_owned()))? {
        println!("   [{t}] {m}");
    }
    Ok(())
}

fn main() -> Result<(), StoreError> {
    let mut db: BranchStore<Chat> = BranchStore::new("alice");
    db.branch_mut("alice")?
        .apply(&send("#rust", "welcome to #rust!"))?;

    // Bob and Carol join (fork their replicas from Alice's).
    db.branch_mut("alice")?.fork("bob")?;
    db.branch_mut("alice")?.fork("carol")?;

    // A network partition: everyone chats locally.
    db.branch_mut("alice")?
        .apply(&send("#rust", "anyone tried MRDTs?"))?;
    db.branch_mut("bob")?
        .apply(&send("#rust", "reading the PLDI paper now"))?;
    db.branch_mut("bob")?
        .apply(&send("#pl", "new channel for PL talk"))?;
    db.branch_mut("carol")?
        .apply(&send("#rust", "the queue merge is neat"))?;
    db.branch_mut("carol")?
        .apply(&send("#pl", "simulation relations ftw"))?;

    // Partition heals: gossip ring until everyone has everything.
    db.branch_mut("alice")?.merge_from("bob")?;
    db.branch_mut("alice")?.merge_from("carol")?;
    db.branch_mut("bob")?.merge_from("alice")?;
    db.branch_mut("carol")?.merge_from("alice")?;

    show(&db, "alice", "#rust")?;
    show(&db, "alice", "#pl")?;

    // All replicas converged to the same chat state.
    let alice = db.state("alice")?;
    for user in ["bob", "carol"] {
        let view = db.state(user)?;
        assert_eq!(alice.channels(), view.channels());
        for ch in alice.channels() {
            assert_eq!(
                alice.messages(ch),
                view.messages(ch),
                "{user} diverges on {ch}"
            );
        }
    }
    println!("replicas converged: {} channels", alice.channels().len());

    // Logs are reverse chronological: newest message first.
    let rust_log = alice.messages("#rust");
    assert!(rust_log.windows(2).all(|w| w[0].0 > w[1].0));
    Ok(())
}

//! IRC-style decentralised chat (paper §5.1) over the branch store.
//!
//! Three users each hold a replica (branch) of the whole chat — a map of
//! channels to mergeable logs — post while partitioned, and converge by
//! gossip merges. Messages in every channel end up in reverse
//! chronological order on every replica.
//!
//! Run with: `cargo run --example irc_chat`

use peepul::store::{BranchStore, StoreError};
use peepul::types::chat::{Chat, ChatOp};

fn send(ch: &str, m: &str) -> ChatOp {
    ChatOp::Send(ch.to_owned(), m.to_owned())
}

fn show(db: &BranchStore<Chat>, user: &str, channel: &str) -> Result<(), StoreError> {
    println!("-- {user}'s view of {channel} --");
    for (t, m) in db.state(user)?.messages(channel) {
        println!("   [{t}] {m}");
    }
    Ok(())
}

fn main() -> Result<(), StoreError> {
    let mut db: BranchStore<Chat> = BranchStore::new("alice");
    db.apply("alice", &send("#rust", "welcome to #rust!"))?;

    // Bob and Carol join (fork their replicas from Alice's).
    db.fork("bob", "alice")?;
    db.fork("carol", "alice")?;

    // A network partition: everyone chats locally.
    db.apply("alice", &send("#rust", "anyone tried MRDTs?"))?;
    db.apply("bob", &send("#rust", "reading the PLDI paper now"))?;
    db.apply("bob", &send("#pl", "new channel for PL talk"))?;
    db.apply("carol", &send("#rust", "the queue merge is neat"))?;
    db.apply("carol", &send("#pl", "simulation relations ftw"))?;

    // Partition heals: gossip ring until everyone has everything.
    db.merge("alice", "bob")?;
    db.merge("alice", "carol")?;
    db.merge("bob", "alice")?;
    db.merge("carol", "alice")?;

    show(&db, "alice", "#rust")?;
    show(&db, "alice", "#pl")?;

    // All replicas converged to the same chat state.
    let alice = db.state("alice")?;
    for user in ["bob", "carol"] {
        let view = db.state(user)?;
        assert_eq!(alice.channels(), view.channels());
        for ch in alice.channels() {
            assert_eq!(
                alice.messages(ch),
                view.messages(ch),
                "{user} diverges on {ch}"
            );
        }
    }
    println!("replicas converged: {} channels", alice.channels().len());

    // Logs are reverse chronological: newest message first.
    let rust_log = alice.messages("#rust");
    assert!(rust_log.windows(2).all(|w| w[0].0 > w[1].0));
    Ok(())
}

//! A versioned key-value database: an α-map of LWW registers over the
//! Git-like store — Irmin-style usage with history, criss-cross merges,
//! and *durable* storage. The finale is a true process-restart demo:
//! the store is dropped, the segment directory is reopened cold, and
//! `BranchStore::open` rebuilds the **typed** database — branches, commit
//! graph, Lamport clock — so queries and new updates run as if the
//! process had never died (the canonical codec is decodable, so recovery
//! is typed state, not just verified bytes).
//!
//! Run with: `cargo run --example versioned_kv`

use peepul::store::{BranchStore, SegmentBackend, StoreError};
use peepul::types::lww_register::{LwwOp, LwwQuery, LwwRegister};
use peepul::types::map::{MapOp, MapQuery, MrdtMap};

type Kv = MrdtMap<LwwRegister<String>>;

fn set(key: &str, value: &str) -> MapOp<LwwRegister<String>> {
    MapOp::Set(key.to_owned(), LwwOp::Write(value.to_owned()))
}

fn get(
    db: &BranchStore<Kv, SegmentBackend>,
    branch: &str,
    key: &str,
) -> Result<Option<String>, StoreError> {
    // The commit-free read path: a nested query routed to one key.
    db.read(branch, &MapQuery::Get(key.to_owned(), LwwQuery::Read))
}

fn main() -> Result<(), StoreError> {
    let dir = std::env::temp_dir().join(format!("peepul-versioned-kv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db: BranchStore<Kv, SegmentBackend> =
        BranchStore::with_backend("main", SegmentBackend::open(&dir)?)?;

    // Configuration data on main.
    db.branch_mut("main")?.apply(&set("region", "eu-west"))?;
    db.branch_mut("main")?.apply(&set("replicas", "3"))?;

    // A staging branch experiments…
    db.branch_mut("main")?.fork("staging")?;
    db.branch_mut("staging")?.apply(&set("replicas", "5"))?;
    db.branch_mut("staging")?
        .apply(&set("feature/queues", "on"))?;

    // …while main gets a hotfix.
    db.branch_mut("main")?.apply(&set("region", "eu-central"))?;

    println!("main    : region={:?}", get(&db, "main", "region")?);
    println!("staging : replicas={:?}", get(&db, "staging", "replicas")?);

    // Criss-cross: each branch pulls the other, then both diverge again —
    // the merge-base machinery resolves the multiple LCAs recursively.
    db.branch_mut("main")?.merge_from("staging")?;
    db.branch_mut("staging")?.merge_from("main")?;
    db.branch_mut("main")?.apply(&set("replicas", "7"))?;
    db.branch_mut("staging")?
        .apply(&set("feature/queues", "off"))?;
    db.branch_mut("main")?.merge_from("staging")?;
    db.branch_mut("staging")?.merge_from("main")?;

    // Both branches agree, last writer wins per key.
    for key in ["region", "replicas", "feature/queues"] {
        let m = get(&db, "main", key)?;
        let s = get(&db, "staging", key)?;
        assert_eq!(m, s, "branches disagree on {key}");
        println!("converged {key} = {m:?}");
    }
    assert_eq!(get(&db, "main", "replicas")?.as_deref(), Some("7"));
    assert_eq!(get(&db, "main", "feature/queues")?.as_deref(), Some("off"));

    println!(
        "commit DAG: {} commits, main history {} deep",
        db.commit_count(),
        db.branch("main")?.history().len()
    );

    // ── Restart ──────────────────────────────────────────────────────
    // Drop the store (the "process" dies), then reopen the segment
    // directory cold and rebuild the typed database from the persisted
    // canonical bytes.
    let main_head = db.head_id("main")?;
    let staging_head = db.head_id("staging")?;
    let commits_before = db.commit_count();
    let tick_before = db.tick();
    drop(db);

    let mut db: BranchStore<Kv, SegmentBackend> = BranchStore::open(SegmentBackend::open(&dir)?)?;
    assert_eq!(db.head_id("main")?, main_head, "head commit id survived");
    assert_eq!(db.head_id("staging")?, staging_head);
    assert_eq!(db.commit_count(), commits_before, "full history recovered");
    assert_eq!(db.tick(), tick_before, "Lamport clock recovered");
    // Typed queries answer from decoded state, same as before the restart.
    assert_eq!(get(&db, "main", "replicas")?.as_deref(), Some("7"));
    assert_eq!(get(&db, "main", "feature/queues")?.as_deref(), Some("off"));
    println!(
        "reopened as typed state: {} branches, {} commits, main @ {}",
        db.branch_names().len(),
        db.commit_count(),
        main_head.short()
    );

    // And the reopened database is fully live: new writes, new merges.
    db.branch_mut("main")?.apply(&set("region", "us-east"))?;
    db.branch_mut("staging")?.merge_from("main")?;
    assert_eq!(get(&db, "staging", "region")?.as_deref(), Some("us-east"));
    println!(
        "post-restart write visible on staging: region={:?}",
        get(&db, "staging", "region")?
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

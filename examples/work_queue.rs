//! A replicated work queue with at-least-once consumption (paper §6).
//!
//! A producer enqueues jobs; two workers on separate branches dequeue
//! concurrently. Because the queue deliberately provides *at-least-once*
//! semantics (like Amazon SQS or RabbitMQ), concurrent dequeues on
//! different branches may hand the same job to both workers — and a job
//! dequeued on either branch disappears everywhere after the merge. The
//! example finishes by replaying the paper's Fig. 11 worked merge.
//!
//! Run with: `cargo run --example work_queue`

use peepul::store::{Backend, BranchStore, StoreError};
use peepul::types::queue::{Queue, QueueOp, QueueValue};

fn dequeue(
    db: &mut BranchStore<Queue<String>>,
    worker: &str,
) -> Result<Option<String>, StoreError> {
    match db.branch_mut(worker)?.apply(&QueueOp::Dequeue)? {
        QueueValue::Dequeued(Some((_, job))) => Ok(Some(job)),
        QueueValue::Dequeued(None) => Ok(None),
        QueueValue::Ack => unreachable!("dequeue returns Dequeued"),
    }
}

fn main() -> Result<(), StoreError> {
    let mut db: BranchStore<Queue<String>> = BranchStore::new("producer");
    // The producer submits the morning batch as one transaction: one
    // commit and one backend write for all four jobs.
    db.branch_mut("producer")?.transaction(|tx| {
        for i in 1..=4 {
            tx.apply(&QueueOp::Enqueue(format!("job-{i}")));
        }
    })?;

    // Two workers clone the queue and start pulling independently.
    let worker_a = db.branch_mut("producer")?.fork("worker-a")?;
    let worker_b = db.branch_mut("producer")?.fork("worker-b")?;

    let a1 = dequeue(&mut db, "worker-a")?;
    let b1 = dequeue(&mut db, "worker-b")?;
    println!("worker-a got {a1:?}; worker-b got {b1:?}");
    // Both saw the same head — at-least-once delivery in action.
    assert_eq!(a1, b1);
    assert_eq!(a1.as_deref(), Some("job-1"));

    let a2 = dequeue(&mut db, "worker-a")?;
    println!("worker-a also got {a2:?}");

    // Sync everyone. Jobs consumed on *either* branch vanish everywhere.
    db.branch_mut("producer")?.merge_from(&worker_a)?;
    db.branch_mut("producer")?.merge_from(&worker_b)?;
    db.branch_mut(&worker_a)?.merge_from("producer")?;
    db.branch_mut(&worker_b)?.merge_from("producer")?;

    let remaining: Vec<String> = db
        .state("producer")?
        .to_list()
        .into_iter()
        .map(|(_, j)| j)
        .collect();
    println!("remaining after sync: {remaining:?}");
    assert_eq!(remaining, vec!["job-3".to_owned(), "job-4".to_owned()]);

    // ----- The paper's Fig. 11, replayed through the store -----
    let mut fig: BranchStore<Queue<u32>> = BranchStore::new("lca");
    for v in 1..=5 {
        fig.branch_mut("lca")?.apply(&QueueOp::Enqueue(v))?;
    }
    fig.branch_mut("lca")?.fork("a")?;
    fig.branch_mut("lca")?.fork("b")?;
    // Submission order fixes the (concurrent) enqueues' timestamps: the
    // figure has 6 and 7 older than 8 and 9, so b posts first.
    fig.branch_mut("a")?.apply(&QueueOp::Dequeue)?;
    fig.branch_mut("a")?.apply(&QueueOp::Dequeue)?;
    fig.branch_mut("b")?.apply(&QueueOp::Dequeue)?;
    fig.branch_mut("b")?.apply(&QueueOp::Enqueue(6))?;
    fig.branch_mut("b")?.apply(&QueueOp::Enqueue(7))?;
    fig.branch_mut("a")?.apply(&QueueOp::Enqueue(8))?;
    fig.branch_mut("a")?.apply(&QueueOp::Enqueue(9))?;
    fig.branch_mut("a")?.merge_from("b")?;
    let merged: Vec<u32> = fig
        .state("a")?
        .to_list()
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    println!("figure 11 merge: {merged:?}");
    assert_eq!(merged, vec![3, 4, 5, 6, 7, 8, 9]);

    // The stores content-address every state; the dedup and merge-cache
    // counters show what the structural sharing bought.
    let dedup = db.backend().stats();
    println!(
        "producer store: {} puts, {} deduplicated; merge cache {:?}",
        dedup.puts,
        dedup.dedup_hits,
        db.merge_cache_stats()
    );
    Ok(())
}

#!/usr/bin/env bash
# End-to-end smoke test of the service layer: a 3-node peepul-server
# fleet driven entirely through peepul-cli.
#
#   scripts/service_smoke.sh [BIN_DIR]
#
# BIN_DIR defaults to target/release; it must contain peepul-server and
# peepul-cli (CI builds them first: cargo build --release -p
# peepul-server -p peepul-cli).
#
# The scenario: three nodes on ephemeral ports, each peering with the
# previously started ones (anti-entropy is pull+push, so a chain
# suffices to connect the fleet). Writes, forks and merges land on
# *different* nodes; the test then polls `peepul-cli serve-status` until
# every node reports identical heads for every non-tracking branch, and
# finally asserts each node serves every write. The whole run is bounded
# by a hard timeout and always tears the fleet down.

set -euo pipefail

BIN_DIR="${1:-target/release}"
SERVER="$BIN_DIR/peepul-server"
CLI="$BIN_DIR/peepul-cli"
DEADLINE_SECS="${SMOKE_DEADLINE_SECS:-60}"

for bin in "$SERVER" "$CLI"; do
  if [ ! -x "$bin" ]; then
    echo "service_smoke: missing binary $bin (build with: cargo build --release -p peepul-server -p peepul-cli)" >&2
    exit 2
  fi
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/peepul-smoke.XXXXXX")"
PIDS=()

cleanup() {
  local status=$?
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  if [ "$status" -ne 0 ]; then
    echo "--- node logs ---" >&2
    cat "$WORK"/n*.log >&2 || true
    # Keep $WORK so CI can upload the logs as an artifact.
  else
    rm -rf "$WORK"
  fi
  exit "$status"
}
trap cleanup EXIT INT TERM

# Absolute hard stop: if anything below wedges (a node that never
# converges, a cli call that hangs), this watchdog kills the whole
# process group rather than letting CI idle until the job timeout.
( sleep "$((DEADLINE_SECS + 30))" && echo "service_smoke: HARD TIMEOUT" >&2 && kill -- -$$ ) &
WATCHDOG=$!
disown "$WATCHDOG" 2>/dev/null || true

start_node() { # name, peers...
  local name="$1"; shift
  local peer_flags=()
  for p in "$@"; do peer_flags+=(--peer "$p"); done
  "$SERVER" --listen 127.0.0.1:0 --data "$WORK/$name" --name "$name" \
    --sync-interval-ms 200 "${peer_flags[@]+"${peer_flags[@]}"}" \
    > "$WORK/$name.log" 2>&1 &
  PIDS+=($!)
  # Scrape the announced ephemeral port.
  for _ in $(seq 1 50); do
    if grep -q "listening on" "$WORK/$name.log"; then break; fi
    sleep 0.1
  done
  grep -o "listening on .*" "$WORK/$name.log" | awk '{print $3}'
}

echo "== starting 3-node fleet"
A=$(start_node n1)
B=$(start_node n2 "$A")
C=$(start_node n3 "$A" "$B")
echo "   n1=$A n2=$B n3=$C"

echo "== writes, forks and merges against different nodes"
"$CLI" --addr "$A" put main city lyon
"$CLI" --addr "$B" put main river rhone
"$CLI" --addr "$C" put main country france
# A fork worked on one node, merged back on another.
"$CLI" --addr "$A" fork main feature
"$CLI" --addr "$A" put feature dish quenelle
# Let the fork replicate before merging it elsewhere.
deadline=$((SECONDS + DEADLINE_SECS))
until "$CLI" --addr "$B" get feature dish >/dev/null 2>&1; do
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "service_smoke: FAIL — fork never replicated to n2" >&2
    exit 1
  fi
  sleep 0.2
done
"$CLI" --addr "$B" merge main feature
# Tenant traffic rides the same fleet.
"$CLI" --addr "$C" --tenant acme put main secret s3cret

echo "== waiting for convergence (identical non-tracking heads on every node)"
heads() { # addr -> sorted "branch name head state" lines, tracking branches excluded
  "$CLI" --addr "$1" serve-status | grep '^branch ' | grep -v '^branch remote/' | sort
}
deadline=$((SECONDS + DEADLINE_SECS))
while true; do
  HA=$(heads "$A"); HB=$(heads "$B"); HC=$(heads "$C")
  if [ -n "$HA" ] && [ "$HA" = "$HB" ] && [ "$HB" = "$HC" ]; then
    break
  fi
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "service_smoke: FAIL — fleet did not converge within ${DEADLINE_SECS}s" >&2
    printf 'n1:\n%s\nn2:\n%s\nn3:\n%s\n' "$HA" "$HB" "$HC" >&2
    exit 1
  fi
  sleep 0.3
done
echo "$HA" | sed 's/^/   /'

echo "== every node serves every write"
for addr in "$A" "$B" "$C"; do
  [ "$("$CLI" --addr "$addr" get main city)" = "lyon" ]
  [ "$("$CLI" --addr "$addr" get main river)" = "rhone" ]
  [ "$("$CLI" --addr "$addr" get main country)" = "france" ]
  [ "$("$CLI" --addr "$addr" get main dish)" = "quenelle" ]   # merged from the fork
  [ "$("$CLI" --addr "$addr" --tenant acme get main secret)" = "s3cret" ]
done

echo "== metrics exposition covers every subsystem"
# `peepul-cli metrics` parses the exposition itself (it fails on empty or
# malformed output); on top of that the fleet must actually have reported
# from each subsystem: store commits, net replication, server requests.
METRICS=$("$CLI" --addr "$B" metrics)
for prefix in peepul_store_ peepul_net_ peepul_server_; do
  if ! grep -q "^$prefix" <<< "$METRICS"; then
    echo "service_smoke: FAIL — metrics exposition has no $prefix* samples" >&2
    printf '%s\n' "$METRICS" >&2
    exit 1
  fi
done
# The fleet converged, so every node has synced: lag gauges must exist
# and requests must have been counted.
grep -q '^peepul_net_lag_ticks' <<< "$METRICS"
grep -q '^peepul_server_requests_total' <<< "$METRICS"

kill "$WATCHDOG" 2>/dev/null || true
echo "service_smoke: PASS"
